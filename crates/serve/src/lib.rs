//! Serving layer: many concurrent streams against one trained ensemble.
//!
//! The paper's online setting (Section 4.2.7 / Table 8) trains offline and
//! scores online, one observation per stream per tick. A deployment serves
//! *fleets* of such streams — thousands of sensors or hosts — from a single
//! checkpointed model. Scoring each stream separately runs `M` batch-size-1
//! forwards per observation, which starves the packed GEMM kernels; the
//! [`FleetDetector`] instead gathers all ready streams' windows into pooled
//! `(B, w, D)` batches per tick, so member inference runs at full batch
//! width through the same SIMD path as offline scoring.
//!
//! ```no_run
//! use cae_core::CaeEnsemble;
//! use cae_serve::FleetDetector;
//!
//! // Offline: train once, checkpoint. Online: load and serve.
//! let ensemble = CaeEnsemble::load("ensemble.caee").expect("checkpoint");
//! let mut fleet = FleetDetector::new(&ensemble);
//! let sensors: Vec<_> = (0..1000).map(|_| fleet.add_stream()).collect();
//!
//! let mut scores = Vec::new();
//! loop {
//!     for &id in &sensors {
//!         fleet.push(id, &[0.0 /* latest observation */]);
//!     }
//!     fleet.tick(&mut scores);
//!     for (id, score) in &scores { /* alerting… */ }
//! #   break;
//! }
//! ```

use cae_autograd::Tape;
use cae_core::CaeEnsemble;
use cae_tensor::{scratch, Tensor};

/// Windows scored per member forward pass. Matches the batch scorer's
/// inference chunk (`INFERENCE_BATCH` in `cae-core`): identical batch
/// shapes dispatch through identical kernels, so a fleet whose full
/// chunks align with the batch scorer's produces bit-identical scores.
pub const FLEET_BATCH: usize = 64;

/// Handle to one stream session inside a [`FleetDetector`].
///
/// Ids are generation-tagged: after [`FleetDetector::remove_stream`] the
/// slot is recycled for future sessions, but the stale id can never
/// silently read another stream — using it panics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StreamId {
    slot: usize,
    generation: u64,
}

struct StreamSlot {
    generation: u64,
    active: bool,
    /// Circular window storage: `window × dim` values, oldest observation
    /// at `head` once the ring is full.
    ring: Vec<f32>,
    /// Next observation slot to write, in `[0, window)`.
    head: usize,
    /// Observations buffered so far (saturates at `window`).
    filled: usize,
    /// Whether a new observation arrived since the last tick.
    fresh: bool,
}

impl StreamSlot {
    fn reset(&mut self) {
        self.head = 0;
        self.filled = 0;
        self.fresh = false;
    }
}

/// Scores many concurrent observation streams against one **fitted**
/// (typically [loaded](CaeEnsemble::load)) ensemble.
///
/// Each stream owns a warm-up ring of its last `w` observations, exactly
/// like [`StreamingDetector`](cae_core::StreamingDetector). The difference
/// is the scoring schedule: observations are buffered by [`push`] and
/// scored by [`tick`], which batches every ready stream's window into
/// pooled `(B, w, D)` tensors (`B ≤` [`FLEET_BATCH`]) and runs all
/// ensemble members at full batch width. Ticks are allocation-free at
/// steady state: ring storage is retained per stream, batch buffers come
/// from the thread-local scratch pool, and the tape is reused.
///
/// [`push`]: FleetDetector::push
/// [`tick`]: FleetDetector::tick
pub struct FleetDetector<'a> {
    ensemble: &'a CaeEnsemble,
    window: usize,
    dim: usize,
    slots: Vec<StreamSlot>,
    free: Vec<usize>,
    next_generation: u64,
    active: usize,
    tape: Tape,
    /// Ready slot indices gathered per tick (retained).
    ready: Vec<usize>,
    /// Per-chunk score output (retained).
    scores: Vec<f32>,
}

impl<'a> FleetDetector<'a> {
    /// A fleet scorer over a **fitted** ensemble.
    pub fn new(ensemble: &'a CaeEnsemble) -> Self {
        assert!(
            ensemble.num_members() > 0,
            "FleetDetector requires a fitted ensemble"
        );
        FleetDetector {
            ensemble,
            window: ensemble.model_config().window,
            dim: ensemble.model_config().dim,
            slots: Vec::new(),
            free: Vec::new(),
            next_generation: 0,
            active: 0,
            tape: Tape::new(),
            ready: Vec::new(),
            scores: Vec::new(),
        }
    }

    /// Window size `w` of the underlying model.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Observation dimensionality `D` of the underlying model.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of active stream sessions.
    pub fn num_streams(&self) -> usize {
        self.active
    }

    /// Opens a new stream session. Slot storage from removed streams is
    /// reused, so long-lived fleets with session churn do not grow.
    pub fn add_stream(&mut self) -> StreamId {
        self.next_generation += 1;
        let generation = self.next_generation;
        let slot = match self.free.pop() {
            Some(i) => {
                let s = &mut self.slots[i];
                s.generation = generation;
                s.active = true;
                s.reset();
                i
            }
            None => {
                self.slots.push(StreamSlot {
                    generation,
                    active: true,
                    ring: vec![0.0; self.window * self.dim],
                    head: 0,
                    filled: 0,
                    fresh: false,
                });
                self.slots.len() - 1
            }
        };
        self.active += 1;
        StreamId { slot, generation }
    }

    /// Closes a stream session. Its slot (and ring storage) is recycled
    /// for a future [`FleetDetector::add_stream`]; the id becomes stale
    /// and must not be used again.
    pub fn remove_stream(&mut self, id: StreamId) {
        let slot = self.slot_mut(id);
        slot.active = false;
        self.free.push(id.slot);
        self.active -= 1;
    }

    /// Clears a stream's warm-up buffer (e.g. after a gap in its feed);
    /// the session stays open and scores again after `w` fresh
    /// observations.
    pub fn reset_stream(&mut self, id: StreamId) {
        self.slot_mut(id).reset();
    }

    /// Observations currently buffered for a stream (saturates at `w`).
    pub fn buffered(&self, id: StreamId) -> usize {
        self.slot(id).filled
    }

    /// Feeds one observation into a stream's ring. Scores are produced by
    /// the next [`FleetDetector::tick`]; a tick scores the window ending
    /// at each stream's **most recent** observation, so push once per
    /// stream between ticks for per-observation scores (pushing more
    /// often skips the intermediate windows).
    pub fn push(&mut self, id: StreamId, observation: &[f32]) {
        assert_eq!(
            observation.len(),
            self.dim,
            "observation dim {} != model dim {}",
            observation.len(),
            self.dim
        );
        let dim = self.dim;
        let window = self.window;
        let slot = self.slot_mut(id);
        slot.ring[slot.head * dim..(slot.head + 1) * dim].copy_from_slice(observation);
        slot.head = (slot.head + 1) % window;
        slot.filled = (slot.filled + 1).min(window);
        slot.fresh = true;
    }

    /// Scores every stream that received an observation since the last
    /// tick and has a full warm-up ring. Clears `out`, then appends one
    /// `(id, score)` pair per scored stream in session-slot order.
    ///
    /// Each score is the ensemble-median reconstruction error of the last
    /// window position — identical to what
    /// [`StreamingDetector::push`](cae_core::StreamingDetector::push)
    /// returns for the same observations, but computed for up to
    /// [`FLEET_BATCH`] streams per member forward pass.
    pub fn tick(&mut self, out: &mut Vec<(StreamId, f32)>) {
        out.clear();
        let (window, dim) = (self.window, self.dim);
        let mut ready = std::mem::take(&mut self.ready);
        ready.clear();
        ready.extend(
            self.slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.active && s.fresh && s.filled == window)
                .map(|(i, _)| i),
        );

        for chunk in ready.chunks(FLEET_BATCH) {
            let mut data = scratch::take(chunk.len() * window * dim);
            for &i in chunk {
                // Unroll the ring in time order: the oldest observation
                // sits at `head` once the ring is full.
                let s = &self.slots[i];
                data.extend_from_slice(&s.ring[s.head * dim..]);
                data.extend_from_slice(&s.ring[..s.head * dim]);
            }
            if let Some(scaler) = self.ensemble.scaler() {
                scaler.apply_in_place(&mut data);
            }
            let batch = Tensor::from_vec(data, &[chunk.len(), window, dim]);
            self.scores.clear();
            self.ensemble
                .score_scaled_windows_into(&mut self.tape, &batch, &mut self.scores);
            batch.recycle();
            for (&i, &score) in chunk.iter().zip(self.scores.iter()) {
                let s = &mut self.slots[i];
                s.fresh = false;
                out.push((
                    StreamId {
                        slot: i,
                        generation: s.generation,
                    },
                    score,
                ));
            }
        }
        self.ready = ready;
    }

    fn slot(&self, id: StreamId) -> &StreamSlot {
        let s = self.slots.get(id.slot).expect("invalid StreamId");
        assert!(
            s.active && s.generation == id.generation,
            "stale StreamId: the stream was removed"
        );
        s
    }

    fn slot_mut(&mut self, id: StreamId) -> &mut StreamSlot {
        let s = self.slots.get_mut(id.slot).expect("invalid StreamId");
        assert!(
            s.active && s.generation == id.generation,
            "stale StreamId: the stream was removed"
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cae_core::{CaeConfig, EnsembleConfig, StreamingDetector};
    use cae_data::{Detector, TimeSeries};

    fn wave(t: usize, phase: f32) -> f32 {
        (t as f32 * 0.3 + phase).sin()
    }

    fn fitted_ensemble() -> CaeEnsemble {
        let series = TimeSeries::univariate((0..200).map(|t| wave(t, 0.0)).collect());
        let mc = CaeConfig::new(1).embed_dim(8).window(8).layers(1);
        let ec = EnsembleConfig::new()
            .num_models(2)
            .epochs_per_model(2)
            .batch_size(16)
            .train_stride(2)
            .seed(23);
        let mut ens = CaeEnsemble::new(mc, ec);
        ens.fit(&series);
        ens
    }

    #[test]
    fn warm_up_emits_nothing_then_scores() {
        let ens = fitted_ensemble();
        let w = ens.model_config().window;
        let mut fleet = FleetDetector::new(&ens);
        let id = fleet.add_stream();
        let mut out = Vec::new();
        for t in 0..w - 1 {
            fleet.push(id, &[wave(t, 0.0)]);
            fleet.tick(&mut out);
            assert!(out.is_empty(), "scored during warm-up at t={t}");
        }
        fleet.push(id, &[wave(w - 1, 0.0)]);
        fleet.tick(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, id);
        assert!(out[0].1 >= 0.0 && out[0].1.is_finite());
    }

    #[test]
    fn fleet_matches_streaming_detector_bit_exactly() {
        // A single-stream fleet assembles the identical (1, w, D) batch a
        // StreamingDetector scores, so the scores must be bit-equal.
        let ens = fitted_ensemble();
        let mut stream = StreamingDetector::new(&ens);
        let mut fleet = FleetDetector::new(&ens);
        let id = fleet.add_stream();
        let mut out = Vec::new();
        for t in 0..40 {
            let obs = [wave(t, 0.4)];
            let expected = stream.push(&obs);
            fleet.push(id, &obs);
            fleet.tick(&mut out);
            match expected {
                Some(score) => assert_eq!(out, [(id, score)], "t={t}"),
                None => assert!(out.is_empty(), "t={t}"),
            }
        }
    }

    #[test]
    fn sixty_four_streams_match_the_batch_scorer_bit_exactly() {
        // 64 streams ticked together form exactly one FLEET_BATCH chunk —
        // the same (64, w, D) shape the batch scorer's inference chunks
        // use — so every kernel dispatches identically and the scores are
        // bit-equal, not merely close.
        let ens = fitted_ensemble();
        let w = ens.model_config().window;
        let len = (w - 1) + 64; // 64 windows ⇒ one full inference chunk
        let phases: Vec<f32> = (0..64).map(|k| k as f32 * 0.09).collect();
        let series: Vec<TimeSeries> = phases
            .iter()
            .map(|&p| TimeSeries::univariate((0..len).map(|t| wave(t, p)).collect()))
            .collect();

        let mut fleet = FleetDetector::new(&ens);
        let ids: Vec<StreamId> = (0..64).map(|_| fleet.add_stream()).collect();
        let mut out = Vec::new();
        let mut per_stream: Vec<Vec<f32>> = vec![Vec::new(); 64];
        for t in 0..len {
            for (k, &id) in ids.iter().enumerate() {
                fleet.push(id, series[k].observation(t));
            }
            fleet.tick(&mut out);
            for &(id, score) in &out {
                let k = ids.iter().position(|&i| i == id).expect("known id");
                per_stream[k].push(score);
            }
        }

        for (k, s) in series.iter().enumerate() {
            let batch_scores = ens.score(s);
            assert_eq!(per_stream[k].len(), 64, "stream {k}");
            // Streaming emits from t = w−1; batch scores before that come
            // from the first window's interior.
            assert_eq!(per_stream[k], batch_scores[w - 1..], "stream {k}");
        }
    }

    #[test]
    fn tick_without_fresh_observations_is_empty() {
        let ens = fitted_ensemble();
        let w = ens.model_config().window;
        let mut fleet = FleetDetector::new(&ens);
        let id = fleet.add_stream();
        let mut out = Vec::new();
        for t in 0..w {
            fleet.push(id, &[wave(t, 0.0)]);
        }
        fleet.tick(&mut out);
        assert_eq!(out.len(), 1);
        fleet.tick(&mut out); // nothing new pushed
        assert!(out.is_empty());
    }

    #[test]
    fn remove_and_reset_sessions() {
        let ens = fitted_ensemble();
        let w = ens.model_config().window;
        let mut fleet = FleetDetector::new(&ens);
        let a = fleet.add_stream();
        let b = fleet.add_stream();
        assert_eq!(fleet.num_streams(), 2);

        let mut out = Vec::new();
        for t in 0..w {
            fleet.push(a, &[wave(t, 0.0)]);
            fleet.push(b, &[wave(t, 1.0)]);
        }
        fleet.remove_stream(b);
        assert_eq!(fleet.num_streams(), 1);
        fleet.tick(&mut out);
        assert_eq!(out.len(), 1, "removed stream must not be scored");
        assert_eq!(out[0].0, a);

        // The freed slot is recycled with a fresh generation and a clean
        // warm-up ring.
        let c = fleet.add_stream();
        assert_ne!(b, c);
        assert_eq!(fleet.buffered(c), 0);

        fleet.reset_stream(a);
        assert_eq!(fleet.buffered(a), 0);
        fleet.push(a, &[0.0]);
        fleet.tick(&mut out);
        assert!(out.is_empty(), "reset stream must warm up again");
    }

    #[test]
    #[should_panic(expected = "stale StreamId")]
    fn stale_id_panics() {
        let ens = fitted_ensemble();
        let mut fleet = FleetDetector::new(&ens);
        let id = fleet.add_stream();
        fleet.remove_stream(id);
        fleet.push(id, &[0.0]);
    }

    #[test]
    #[should_panic(expected = "requires a fitted ensemble")]
    fn rejects_unfitted_ensemble() {
        let ens = CaeEnsemble::new(CaeConfig::new(1), EnsembleConfig::new());
        FleetDetector::new(&ens);
    }
}
