//! Durable fleet state: snapshot format v1 and journal replay.
//!
//! PR 7 made the fleet survive *in-process* faults; a process crash still
//! erased every session's warm-up ring and health machine, so a restarted
//! fleet mis-scored for `w` pushes per stream. This module closes the
//! gap with the classic snapshot + write-ahead-log pair:
//!
//! * [`FleetSnapshot`] — **format v1**, built on the same wire machinery
//!   as the ensemble checkpoint ([`cae_core::persist::wire`]): magic
//!   `b"CAEF"`, version, little-endian fields, trailing FNV-1a 64
//!   checksum, atomic temp+rename writes, typed errors. It captures the
//!   fleet's *entire* mutable serving state — every slot's generation,
//!   ring, freshness and health machine, the free list, the shed cursor,
//!   the lifetime counters — plus two optional sections: the journal
//!   position at snapshot time and an opaque adaptation-state blob
//!   (`cae-adapt`'s drift monitor + reservoir, encoded by that crate).
//! * [`FleetDetector::restore`] — rebuilds a fleet from a snapshot over a
//!   loaded ensemble, validating shape compatibility with typed errors.
//! * [`FleetDetector::replay_journal`] — re-applies [`JournalRecord`]s
//!   through the *normal* push/tick path, so the recovered fleet's state
//!   machine advances exactly as the original did.
//!
//! ## Snapshot format v1
//!
//! ```text
//! magic     4 bytes  b"CAEF"
//! version   u32      format version (currently 1)
//! shape     window u64, dim u64
//! fleet     model_generation, next_generation, tick_budget, scan_from,
//!           quarantine_events, recoveries, faulty_observations,
//!           shed_windows, suppressed_scores — all u64
//! health    suspect_after, quarantine_after, flatline_after,
//!           probe_after — all u32
//! free      u64 count; slot indices u64×count
//! slots     u64 count; per slot: generation u64, active u8, head u64,
//!           filled u64, fresh u8, health-state tag u8,
//!           consecutive_faults u32, flat_run u32, probe_goods u32,
//!           has_prev u8, prev f32×dim, ring f32×(window·dim)
//! journal   u8 present flag; if 1: segment u64, offset u64
//! adapt     u8 present flag; if 1: u64 length, opaque bytes
//! checksum  u64      FNV-1a 64 over every preceding byte
//! ```
//!
//! ## The recovery-parity guarantee
//!
//! Serving is deterministic: identical batch shapes dispatch identical
//! kernels, so identical (snapshot, journal suffix) pairs reconverge on
//! identical state. Concretely, for a fleet journaling every event:
//!
//! ```text
//! restore(snapshot) + replay(journal after snapshot.journal_position)
//!     ≡ the never-killed fleet, bit for bit
//! ```
//!
//! — every future score, every health transition, every counter. The
//! workspace `restart_recovery` test sweeps this over 100+ seeded kill
//! points; `snapshot_crash` proves a crash at any byte offset of a
//! snapshot write leaves the previous snapshot loadable.
//!
//! Fault-injection: [`FleetSnapshot::save`] goes through the same
//! dual-evaluation atomic write as the checkpoint, on the
//! `snapshot.write` failpoint.

use crate::{FleetDetector, HealthConfig, StreamHealth, StreamId, StreamSlot};
use cae_autograd::Tape;
use cae_chaos as chaos;
use cae_core::persist::wire::{self, Reader, Writer};
use cae_core::{CaeEnsemble, PersistError};
use cae_data::journal::{JournalPosition, JournalRecord};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// First bytes of every fleet snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"CAEF";

/// The snapshot format version this build writes (and the newest it
/// reads).
pub const SNAPSHOT_VERSION: u32 = 1;

/// Sanity bound on structural dimensions read from a snapshot — a
/// corrupt-but-checksum-valid count must not drive restore into an
/// absurd allocation (same policy as the checkpoint reader).
const MAX_REASONABLE: usize = 1 << 20;

/// A point-in-time capture of a [`FleetDetector`]'s full mutable serving
/// state (model parameters excluded — those live in the ensemble
/// checkpoint). See the [module docs](self) for the format.
#[derive(Clone)]
pub struct FleetSnapshot {
    window: usize,
    dim: usize,
    model_generation: u64,
    next_generation: u64,
    tick_budget: usize,
    scan_from: usize,
    quarantine_events: u64,
    recoveries: u64,
    faulty_observations: u64,
    shed_windows: u64,
    suppressed_scores: u64,
    health: HealthConfig,
    free: Vec<usize>,
    slots: Vec<StreamSlot>,
    journal_position: Option<JournalPosition>,
    adaptation_state: Option<Vec<u8>>,
}

impl fmt::Debug for FleetSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetSnapshot")
            .field("window", &self.window)
            .field("dim", &self.dim)
            .field("model_generation", &self.model_generation)
            .field("slots", &self.slots.len())
            .field("journal_position", &self.journal_position)
            .field(
                "adaptation_state_bytes",
                &self.adaptation_state.as_ref().map(Vec::len),
            )
            .finish_non_exhaustive()
    }
}

/// Why a snapshot could not be applied to an ensemble.
#[derive(Debug)]
pub enum RestoreError {
    /// The snapshot file itself could not be read or decoded.
    Persist(PersistError),
    /// The ensemble's window size disagrees with the snapshotted rings.
    WindowMismatch {
        /// Window size recorded in the snapshot.
        snapshot: usize,
        /// Window size of the ensemble being restored onto.
        ensemble: usize,
    },
    /// The ensemble's observation dimensionality disagrees with the
    /// snapshotted rings.
    DimMismatch {
        /// Dimensionality recorded in the snapshot.
        snapshot: usize,
        /// Dimensionality of the ensemble being restored onto.
        ensemble: usize,
    },
    /// The ensemble has no fitted members.
    UnfittedEnsemble,
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Persist(e) => write!(f, "snapshot unreadable: {e}"),
            RestoreError::WindowMismatch { snapshot, ensemble } => write!(
                f,
                "snapshot window {snapshot} != ensemble window {ensemble}"
            ),
            RestoreError::DimMismatch { snapshot, ensemble } => {
                write!(f, "snapshot dim {snapshot} != ensemble dim {ensemble}")
            }
            RestoreError::UnfittedEnsemble => {
                write!(f, "restore requires a fitted ensemble")
            }
        }
    }
}

impl std::error::Error for RestoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RestoreError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for RestoreError {
    fn from(e: PersistError) -> Self {
        RestoreError::Persist(e)
    }
}

/// Why journal replay had to stop: the journal and the snapshot do not
/// describe the same history. (Push-level faults — dim mismatches,
/// unknown ids the original fleet also rejected — are *replayed*, not
/// errors: they reproduce the original fault accounting.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// A `StreamOpened` record replayed, but the fleet minted a different
    /// id than the journal recorded — the snapshot predates a different
    /// session history than this journal continues.
    OpenDiverged {
        /// `(slot, generation)` the journal recorded.
        expected: (u64, u64),
        /// `(slot, generation)` the restored fleet minted.
        minted: (u64, u64),
    },
    /// A `StreamClosed` record names a stream that is not live in the
    /// restored fleet.
    CloseUnknown {
        /// Slot index the record named.
        slot: u64,
        /// Generation tag the record named.
        generation: u64,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::OpenDiverged { expected, minted } => write!(
                f,
                "journal/snapshot divergence: StreamOpened expected {expected:?}, fleet minted {minted:?}"
            ),
            ReplayError::CloseUnknown { slot, generation } => write!(
                f,
                "journal/snapshot divergence: StreamClosed names dead stream ({slot}, {generation})"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// What a journal replay applied, for recovery diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Total records applied.
    pub records: u64,
    /// Observations re-pushed.
    pub observations: u64,
    /// Streams re-opened.
    pub opened: u64,
    /// Streams re-closed.
    pub closed: u64,
    /// Ticks re-run.
    pub ticks: u64,
    /// Observations the fleet rejected or discarded during replay —
    /// faithful reproductions of the original faults, not replay errors.
    pub push_faults: u64,
}

fn health_tag(state: StreamHealth) -> u8 {
    match state {
        StreamHealth::Healthy => 0,
        StreamHealth::Suspect => 1,
        StreamHealth::Quarantined => 2,
        StreamHealth::Recovering => 3,
    }
}

fn health_from_tag(tag: u8) -> Result<StreamHealth, PersistError> {
    match tag {
        0 => Ok(StreamHealth::Healthy),
        1 => Ok(StreamHealth::Suspect),
        2 => Ok(StreamHealth::Quarantined),
        3 => Ok(StreamHealth::Recovering),
        _ => Err(PersistError::Corrupt(format!(
            "invalid stream-health tag {tag}"
        ))),
    }
}

impl FleetSnapshot {
    /// Records the journal position taken at snapshot time, so recovery
    /// replays exactly the records that post-date this snapshot.
    pub fn with_journal_position(mut self, position: JournalPosition) -> Self {
        self.journal_position = Some(position);
        self
    }

    /// Attaches the adaptation tier's exported state
    /// (`AdaptationState::encode` in `cae-adapt`) as an opaque section —
    /// the serving tier never interprets it.
    pub fn with_adaptation_state(mut self, bytes: Vec<u8>) -> Self {
        self.adaptation_state = Some(bytes);
        self
    }

    /// The journal position recorded at snapshot time, if any.
    pub fn journal_position(&self) -> Option<JournalPosition> {
        self.journal_position
    }

    /// The opaque adaptation-state section, if one was attached.
    pub fn adaptation_state(&self) -> Option<&[u8]> {
        self.adaptation_state.as_deref()
    }

    /// Window size `w` the snapshotted rings were built for.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Observation dimensionality `D` the snapshotted rings were built
    /// for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Model generation the fleet was serving when snapshotted.
    pub fn model_generation(&self) -> u64 {
        self.model_generation
    }

    /// Live stream sessions captured in this snapshot.
    pub fn num_streams(&self) -> usize {
        self.slots.iter().filter(|s| s.active).count()
    }

    /// Serializes the snapshot into format-v1 bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::framed(SNAPSHOT_MAGIC, SNAPSHOT_VERSION);
        w.usize(self.window);
        w.usize(self.dim);
        w.u64(self.model_generation);
        w.u64(self.next_generation);
        w.usize(self.tick_budget);
        w.usize(self.scan_from);
        w.u64(self.quarantine_events);
        w.u64(self.recoveries);
        w.u64(self.faulty_observations);
        w.u64(self.shed_windows);
        w.u64(self.suppressed_scores);
        w.u32(self.health.suspect_after);
        w.u32(self.health.quarantine_after);
        w.u32(self.health.flatline_after);
        w.u32(self.health.probe_after);
        w.usize(self.free.len());
        for &i in &self.free {
            w.usize(i);
        }
        w.usize(self.slots.len());
        for s in &self.slots {
            w.u64(s.generation);
            w.bool(s.active);
            w.usize(s.head);
            w.usize(s.filled);
            w.bool(s.fresh);
            w.u8(health_tag(s.state));
            w.u32(s.consecutive_faults);
            w.u32(s.flat_run);
            w.u32(s.probe_goods);
            w.bool(s.has_prev);
            w.f32_slice(&s.prev);
            w.f32_slice(&s.ring);
        }
        match self.journal_position {
            Some(pos) => {
                w.bool(true);
                w.u64(pos.segment);
                w.u64(pos.offset);
            }
            None => w.bool(false),
        }
        match &self.adaptation_state {
            Some(bytes) => {
                w.bool(true);
                w.usize(bytes.len());
                w.raw(bytes);
            }
            None => w.bool(false),
        }
        w.finish()
    }

    /// Parses format-v1 bytes back into a snapshot. Every malformed
    /// input — truncation, flipped bytes, wrong magic, a future version,
    /// inconsistent structure — surfaces as a typed [`PersistError`].
    pub fn decode(bytes: &[u8]) -> Result<Self, PersistError> {
        let (_version, mut c) = Reader::framed(bytes, SNAPSHOT_MAGIC, SNAPSHOT_VERSION)?;
        let window = c.usize("window")?;
        let dim = c.usize("dim")?;
        for (v, what) in [(window, "window"), (dim, "dim")] {
            if v == 0 || v > MAX_REASONABLE {
                return Err(PersistError::Corrupt(format!(
                    "{what} value {v} outside the plausible range [1, {MAX_REASONABLE}]"
                )));
            }
        }
        let model_generation = c.u64("model generation")?;
        let next_generation = c.u64("next generation")?;
        let tick_budget = c.usize("tick budget")?;
        let scan_from = c.usize("scan cursor")?;
        let quarantine_events = c.u64("quarantine events")?;
        let recoveries = c.u64("recoveries")?;
        let faulty_observations = c.u64("faulty observations")?;
        let shed_windows = c.u64("shed windows")?;
        let suppressed_scores = c.u64("suppressed scores")?;
        let health = HealthConfig {
            suspect_after: c.u32("suspect threshold")?,
            quarantine_after: c.u32("quarantine threshold")?,
            flatline_after: c.u32("flatline threshold")?,
            probe_after: c.u32("probe threshold")?,
        };
        if health.suspect_after < 1 || health.probe_after < 1 {
            return Err(PersistError::Corrupt(
                "health thresholds must be at least 1".to_string(),
            ));
        }
        if health.quarantine_after < health.suspect_after {
            return Err(PersistError::Corrupt(format!(
                "quarantine_after {} < suspect_after {}",
                health.quarantine_after, health.suspect_after
            )));
        }
        let free_len = c.usize("free-list length")?;
        if free_len > MAX_REASONABLE {
            return Err(PersistError::Corrupt(format!(
                "free-list length {free_len} outside the plausible range"
            )));
        }
        let mut free = Vec::with_capacity(free_len.min(c.remaining() / 8));
        for _ in 0..free_len {
            free.push(c.usize("free slot index")?);
        }
        let num_slots = c.usize("slot count")?;
        if num_slots > MAX_REASONABLE {
            return Err(PersistError::Corrupt(format!(
                "slot count {num_slots} outside the plausible range"
            )));
        }
        let mut slots = Vec::with_capacity(num_slots.min(c.remaining() / 8));
        for i in 0..num_slots {
            let generation = c.u64("slot generation")?;
            let active = c.bool("slot active")?;
            let head = c.usize("slot head")?;
            let filled = c.usize("slot filled")?;
            let fresh = c.bool("slot fresh")?;
            let state = health_from_tag(c.u8("slot health tag")?)?;
            let consecutive_faults = c.u32("slot fault run")?;
            let flat_run = c.u32("slot flat run")?;
            let probe_goods = c.u32("slot probe count")?;
            let has_prev = c.bool("slot has-prev")?;
            let prev = c.f32_vec(dim, "slot prev observation")?;
            let ring = c.f32_vec(window * dim, "slot ring")?;
            if head >= window {
                return Err(PersistError::Corrupt(format!(
                    "slot {i}: head {head} outside window {window}"
                )));
            }
            if filled > window {
                return Err(PersistError::Corrupt(format!(
                    "slot {i}: filled {filled} exceeds window {window}"
                )));
            }
            slots.push(StreamSlot {
                generation,
                active,
                ring,
                head,
                filled,
                fresh,
                state,
                consecutive_faults,
                flat_run,
                probe_goods,
                prev,
                has_prev,
            });
        }
        let mut seen = vec![false; slots.len()];
        for &i in &free {
            if i >= slots.len() {
                return Err(PersistError::Corrupt(format!(
                    "free list names slot {i} of {}",
                    slots.len()
                )));
            }
            if slots[i].active {
                return Err(PersistError::Corrupt(format!(
                    "free list names active slot {i}"
                )));
            }
            if std::mem::replace(&mut seen[i], true) {
                return Err(PersistError::Corrupt(format!(
                    "free list names slot {i} twice"
                )));
            }
        }
        let journal_position = if c.bool("journal-position present")? {
            Some(JournalPosition {
                segment: c.u64("journal segment")?,
                offset: c.u64("journal offset")?,
            })
        } else {
            None
        };
        let adaptation_state = if c.bool("adaptation-state present")? {
            let len = c.usize("adaptation-state length")?;
            Some(c.bytes(len, "adaptation-state bytes")?.to_vec())
        } else {
            None
        };
        if c.remaining() != 0 {
            return Err(PersistError::Corrupt(format!(
                "{} trailing bytes after the adaptation section",
                c.remaining()
            )));
        }
        Ok(FleetSnapshot {
            window,
            dim,
            model_generation,
            next_generation,
            tick_budget,
            scan_from,
            quarantine_events,
            recoveries,
            faulty_observations,
            shed_windows,
            suppressed_scores,
            health,
            free,
            slots,
            journal_position,
            adaptation_state,
        })
    }

    /// Writes the snapshot to `path` (format v1) through the atomic
    /// temp+rename discipline.
    ///
    /// Fault-injection: the `snapshot.write` failpoint is evaluated
    /// twice per save, exactly like the checkpoint's `persist.write` —
    /// tear or abort the temp write, or crash pre-rename. In every
    /// injected outcome the snapshot previously at `path` is untouched.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        wire::write_atomic(path.as_ref(), &self.encode(), &chaos::sites::SNAPSHOT_WRITE)
    }

    /// Reads a snapshot from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Self::decode(&std::fs::read(path.as_ref())?)
    }
}

impl FleetDetector {
    /// Captures the fleet's full mutable serving state. Pair with the
    /// journal position taken in the same quiet moment
    /// ([`FleetSnapshot::with_journal_position`]) so recovery knows where
    /// replay starts.
    pub fn snapshot(&self) -> FleetSnapshot {
        FleetSnapshot {
            window: self.window,
            dim: self.dim,
            model_generation: self.model_generation,
            next_generation: self.next_generation,
            tick_budget: self.tick_budget,
            scan_from: self.scan_from,
            quarantine_events: self.quarantine_events,
            recoveries: self.recoveries,
            faulty_observations: self.faulty_observations,
            shed_windows: self.shed_windows,
            suppressed_scores: self.suppressed_scores,
            health: self.health_cfg,
            free: self.free.clone(),
            slots: self.slots.clone(),
            journal_position: None,
            adaptation_state: None,
        }
    }

    /// Rebuilds a fleet from a snapshot over a (typically freshly
    /// [loaded](CaeEnsemble::load)) ensemble.
    ///
    /// The restored fleet is bit-identical to the snapshotted one in
    /// every way that affects future behavior: stream ids, warm-up
    /// rings, health machines, the shed cursor, counters. Restoring onto
    /// an ensemble whose window/dimensionality disagree with the
    /// snapshotted rings is a typed [`RestoreError`], never a panic —
    /// the snapshot came from a file.
    pub fn restore(
        ensemble: impl Into<Arc<CaeEnsemble>>,
        snapshot: &FleetSnapshot,
    ) -> Result<FleetDetector, RestoreError> {
        let ensemble = ensemble.into();
        if ensemble.num_members() == 0 {
            return Err(RestoreError::UnfittedEnsemble);
        }
        let window = ensemble.model_config().window;
        let dim = ensemble.model_config().dim;
        if snapshot.window != window {
            return Err(RestoreError::WindowMismatch {
                snapshot: snapshot.window,
                ensemble: window,
            });
        }
        if snapshot.dim != dim {
            return Err(RestoreError::DimMismatch {
                snapshot: snapshot.dim,
                ensemble: dim,
            });
        }
        let active = snapshot.slots.iter().filter(|s| s.active).count();
        Ok(FleetDetector {
            ensemble,
            retired: None,
            model_generation: snapshot.model_generation,
            window,
            dim,
            slots: snapshot.slots.clone(),
            free: snapshot.free.clone(),
            next_generation: snapshot.next_generation,
            active,
            tape: Tape::new(),
            ready: Vec::new(),
            scores: Vec::new(),
            health_cfg: snapshot.health,
            tick_budget: snapshot.tick_budget,
            scan_from: snapshot.scan_from,
            quarantine_events: snapshot.quarantine_events,
            recoveries: snapshot.recoveries,
            faulty_observations: snapshot.faulty_observations,
            shed_windows: snapshot.shed_windows,
            suppressed_scores: snapshot.suppressed_scores,
            obs: crate::ServeObs::new(&cae_obs::MetricsRegistry::disabled()),
        })
    }

    /// Re-applies journaled records through the normal push/tick path,
    /// discarding replayed scores. See
    /// [`FleetDetector::replay_journal_with`] to observe them (e.g. to
    /// re-feed an adaptation controller).
    pub fn replay_journal<'a>(
        &mut self,
        records: impl IntoIterator<Item = &'a JournalRecord>,
    ) -> Result<ReplaySummary, ReplayError> {
        self.replay_journal_with(records, |_, _| {})
    }

    /// Re-applies journaled records, invoking `on_score` for every
    /// `(id, score)` a replayed tick emits — exactly the scores the
    /// original fleet produced after the snapshot, so downstream
    /// consumers (drift monitors, alerting dedup) can be caught up too.
    ///
    /// Records replay through the *normal* serving path: faulty
    /// observations re-drive the health machine, rejected pushes
    /// reproduce the original typed errors (counted in
    /// [`ReplaySummary::push_faults`], not fatal). Only genuine
    /// snapshot/journal divergence — an id minted differently than
    /// recorded, a close of a dead stream — aborts with a typed
    /// [`ReplayError`].
    pub fn replay_journal_with<'a, F>(
        &mut self,
        records: impl IntoIterator<Item = &'a JournalRecord>,
        mut on_score: F,
    ) -> Result<ReplaySummary, ReplayError>
    where
        F: FnMut(StreamId, f32),
    {
        let mut summary = ReplaySummary::default();
        let mut scores: Vec<(StreamId, f32)> = Vec::new();
        for record in records {
            summary.records += 1;
            match record {
                JournalRecord::Observation {
                    slot,
                    generation,
                    values,
                } => {
                    summary.observations += 1;
                    let id = StreamId::from_raw_parts(*slot, *generation);
                    match self.push(id, values) {
                        Ok(crate::PushOutcome::Stored) => {}
                        Ok(crate::PushOutcome::Discarded) | Err(_) => {
                            summary.push_faults += 1;
                        }
                    }
                }
                JournalRecord::StreamOpened { slot, generation } => {
                    summary.opened += 1;
                    let minted = self.add_stream();
                    if minted.raw_parts() != (*slot, *generation) {
                        return Err(ReplayError::OpenDiverged {
                            expected: (*slot, *generation),
                            minted: minted.raw_parts(),
                        });
                    }
                }
                JournalRecord::StreamClosed { slot, generation } => {
                    summary.closed += 1;
                    let live = self
                        .slots
                        .get(*slot as usize)
                        .is_some_and(|s| s.active && s.generation == *generation);
                    if !live {
                        return Err(ReplayError::CloseUnknown {
                            slot: *slot,
                            generation: *generation,
                        });
                    }
                    self.remove_stream(StreamId::from_raw_parts(*slot, *generation));
                }
                JournalRecord::Tick => {
                    summary.ticks += 1;
                    self.tick(&mut scores);
                    for &(id, score) in &scores {
                        on_score(id, score);
                    }
                }
            }
        }
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cae_core::{CaeConfig, EnsembleConfig};
    use cae_data::{Detector, TimeSeries};

    fn wave(t: usize, phase: f32) -> f32 {
        (t as f32 * 0.3 + phase).sin()
    }

    fn fitted_ensemble() -> Arc<CaeEnsemble> {
        let series = TimeSeries::univariate((0..200).map(|t| wave(t, 0.0)).collect());
        let mc = CaeConfig::new(1).embed_dim(8).window(8).layers(1);
        let ec = EnsembleConfig::new()
            .num_models(2)
            .epochs_per_model(2)
            .batch_size(16)
            .train_stride(2)
            .seed(23);
        let mut ens = CaeEnsemble::new(mc, ec);
        ens.fit(&series);
        Arc::new(ens)
    }

    /// A fleet with non-trivial state: three opened streams, one closed
    /// (free-list entry + retired generation), partial warm-ups, one
    /// stream pushed NaNs so the health machine has left `Healthy`.
    fn busy_fleet(ens: &Arc<CaeEnsemble>) -> (FleetDetector, Vec<StreamId>) {
        let mut fleet = FleetDetector::new(ens.clone());
        let a = fleet.add_stream();
        let b = fleet.add_stream();
        let c = fleet.add_stream();
        let mut out = Vec::new();
        for t in 0..20 {
            fleet.push(a, &[wave(t, 0.0)]).unwrap();
            fleet.push(b, &[wave(t, 1.3)]).unwrap();
            if t < 9 {
                fleet.push(c, &[wave(t, 2.1)]).unwrap();
            } else {
                let _ = fleet.push(c, &[f32::NAN]);
            }
            fleet.tick(&mut out);
        }
        fleet.remove_stream(b);
        let d = fleet.add_stream();
        fleet.push(d, &[wave(0, 0.7)]).unwrap();
        fleet.tick(&mut out);
        (fleet, vec![a, c, d])
    }

    fn drive(fleet: &mut FleetDetector, ids: &[StreamId], steps: usize) -> Vec<(StreamId, f32)> {
        let mut all = Vec::new();
        let mut out = Vec::new();
        for t in 0..steps {
            for (k, &id) in ids.iter().enumerate() {
                let _ = fleet.push(id, &[wave(100 + t, k as f32 * 0.9)]);
            }
            fleet.tick(&mut out);
            all.extend(out.iter().copied());
        }
        all
    }

    #[test]
    fn snapshot_roundtrip_is_bit_exact() {
        let ens = fitted_ensemble();
        let (fleet, _) = busy_fleet(&ens);
        let snap = fleet
            .snapshot()
            .with_journal_position(JournalPosition {
                segment: 3,
                offset: 1234,
            })
            .with_adaptation_state(vec![7, 7, 7]);
        let bytes = snap.encode();
        let back = FleetSnapshot::decode(&bytes).unwrap();
        assert_eq!(back.encode(), bytes, "decode→encode must be bit-identical");
        assert_eq!(
            back.journal_position(),
            Some(JournalPosition {
                segment: 3,
                offset: 1234
            })
        );
        assert_eq!(back.adaptation_state(), Some(&[7u8, 7, 7][..]));
        assert_eq!(back.num_streams(), 3);
    }

    #[test]
    fn restored_fleet_matches_original_bit_for_bit() {
        let ens = fitted_ensemble();
        let (mut live, ids) = busy_fleet(&ens);
        let snap = live.snapshot();
        let mut restored = FleetDetector::restore(ens.clone(), &snap).unwrap();
        assert_eq!(restored.num_streams(), live.num_streams());
        let live_scores = drive(&mut live, &ids, 30);
        let restored_scores = drive(&mut restored, &ids, 30);
        assert_eq!(live_scores.len(), restored_scores.len());
        for (l, r) in live_scores.iter().zip(&restored_scores) {
            assert_eq!(l.0, r.0);
            assert_eq!(
                l.1.to_bits(),
                r.1.to_bits(),
                "scores diverged: {} vs {}",
                l.1,
                r.1
            );
        }
        assert_eq!(live.health_report(), restored.health_report());
    }

    #[test]
    fn save_load_roundtrip_on_disk() {
        let ens = fitted_ensemble();
        let (fleet, _) = busy_fleet(&ens);
        let path =
            std::env::temp_dir().join(format!("cae_fleet_snap_rt_{}.caef", std::process::id()));
        let snap = fleet.snapshot();
        snap.save(&path).unwrap();
        let back = FleetSnapshot::load(&path).unwrap();
        assert_eq!(back.encode(), snap.encode());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn decode_rejects_malformed_inputs_with_typed_errors() {
        let ens = fitted_ensemble();
        let (fleet, _) = busy_fleet(&ens);
        let bytes = fleet.snapshot().encode();

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            FleetSnapshot::decode(&wrong_magic),
            Err(PersistError::BadMagic)
        ));

        let mut future = bytes.clone();
        future[4] = 99;
        assert!(matches!(
            FleetSnapshot::decode(&future),
            Err(PersistError::UnsupportedVersion(99))
        ));

        let mut flipped = bytes.clone();
        let mid = bytes.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            FleetSnapshot::decode(&flipped),
            Err(PersistError::ChecksumMismatch)
        ));

        // Truncation at every prefix length: typed error, never a panic.
        for len in 0..bytes.len() {
            assert!(
                FleetSnapshot::decode(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let ens = fitted_ensemble();
        let (fleet, _) = busy_fleet(&ens);
        let snap = fleet.snapshot();

        let series = TimeSeries::univariate((0..200).map(|t| wave(t, 0.0)).collect());
        let mc = CaeConfig::new(1).embed_dim(8).window(12).layers(1);
        let ec = EnsembleConfig::new()
            .num_models(1)
            .epochs_per_model(1)
            .batch_size(16)
            .seed(5);
        let mut other = CaeEnsemble::new(mc, ec);
        other.fit(&series);
        assert!(matches!(
            FleetDetector::restore(other, &snap),
            Err(RestoreError::WindowMismatch {
                snapshot: 8,
                ensemble: 12
            })
        ));

        let unfitted = CaeEnsemble::new(
            CaeConfig::new(1).embed_dim(8).window(8).layers(1),
            EnsembleConfig::new().num_models(1),
        );
        assert!(matches!(
            FleetDetector::restore(unfitted, &snap),
            Err(RestoreError::UnfittedEnsemble)
        ));
    }

    #[test]
    fn replay_reconverges_with_live_fleet() {
        let ens = fitted_ensemble();

        // Live fleet: runs uninterrupted, journaling every event.
        let mut live = FleetDetector::new(ens.clone());
        let mut journal: Vec<JournalRecord> = Vec::new();
        let open = |fleet: &mut FleetDetector, journal: &mut Vec<JournalRecord>| {
            let id = fleet.add_stream();
            let (slot, generation) = id.raw_parts();
            journal.push(JournalRecord::StreamOpened { slot, generation });
            id
        };
        let a = open(&mut live, &mut journal);
        let b = open(&mut live, &mut journal);

        // Snapshot point: before any post-snapshot traffic.
        let snap = live.snapshot();
        let snap_mark = journal.len();

        let mut out = Vec::new();
        let mut live_scores = Vec::new();
        for t in 0..40 {
            for (k, &id) in [a, b].iter().enumerate() {
                let (slot, generation) = id.raw_parts();
                let v = if t == 25 && k == 1 {
                    f32::NAN
                } else {
                    wave(t, k as f32)
                };
                journal.push(JournalRecord::Observation {
                    slot,
                    generation,
                    values: vec![v],
                });
                let _ = live.push(id, &[v]);
            }
            if t == 30 {
                let (slot, generation) = b.raw_parts();
                journal.push(JournalRecord::StreamClosed { slot, generation });
                live.remove_stream(b);
            }
            journal.push(JournalRecord::Tick);
            live.tick(&mut out);
            live_scores.extend(out.iter().copied());
        }

        // Crash + recover: restore the snapshot, replay the suffix.
        let mut recovered = FleetDetector::restore(ens.clone(), &snap).unwrap();
        let mut replayed_scores = Vec::new();
        let summary = recovered
            .replay_journal_with(&journal[snap_mark..], |id, s| {
                replayed_scores.push((id, s));
            })
            .unwrap();
        assert_eq!(summary.ticks, 40);
        assert_eq!(summary.closed, 1);
        assert!(summary.push_faults > 0, "NaN push should replay as a fault");

        assert_eq!(live_scores.len(), replayed_scores.len());
        for (l, r) in live_scores.iter().zip(&replayed_scores) {
            assert_eq!(l.0, r.0);
            assert_eq!(l.1.to_bits(), r.1.to_bits());
        }
        assert_eq!(live.health_report(), recovered.health_report());

        // And the recovered fleet keeps matching the live one afterwards.
        let live_future = drive(&mut live, &[a], 10);
        let recovered_future = drive(&mut recovered, &[a], 10);
        assert_eq!(live_future, recovered_future);
    }

    #[test]
    fn replay_detects_divergent_history() {
        let ens = fitted_ensemble();
        let mut fleet = FleetDetector::new(ens.clone());
        let records = [JournalRecord::StreamOpened {
            slot: 5,
            generation: 9,
        }];
        assert!(matches!(
            fleet.replay_journal(&records),
            Err(ReplayError::OpenDiverged { .. })
        ));

        let mut fleet = FleetDetector::new(ens);
        let records = [JournalRecord::StreamClosed {
            slot: 0,
            generation: 1,
        }];
        assert!(matches!(
            fleet.replay_journal(&records),
            Err(ReplayError::CloseUnknown {
                slot: 0,
                generation: 1
            })
        ));
    }
}
