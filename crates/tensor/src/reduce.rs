//! Reductions and axis statistics.
//!
//! The bandwidth-bound passes (global sums, axis folds, squared norms)
//! dispatch through [`crate::simd`] and run 8-wide on AVX2 hosts.

use crate::{scratch, simd, Tensor};

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        simd::sum(self.data())
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element (−∞ for an empty tensor).
    pub fn max(&self) -> f32 {
        simd::max(self.data())
    }

    /// Minimum element (+∞ for an empty tensor).
    pub fn min(&self) -> f32 {
        simd::min(self.data())
    }

    /// Mean squared difference against `other`: `mean((a - b)²)`.
    ///
    /// This is the autoencoder reconstruction objective (paper Eq. 1).
    pub fn mse(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.dims(),
            other.dims(),
            "mse: shape mismatch {} vs {}",
            self.shape(),
            other.shape()
        );
        if self.is_empty() {
            return 0.0;
        }
        simd::sq_diff_sum(self.data(), other.data()) / self.len() as f32
    }

    /// Sums a rank-3 `(B, M, N)` tensor over its first axis, producing `(M, N)`.
    pub fn sum_axis0(&self) -> Tensor {
        assert_eq!(self.rank(), 3, "sum_axis0 requires rank 3");
        let (b, m, n) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let mut out = scratch::take_zeroed(m * n);
        for bi in 0..b {
            simd::add_assign(&mut out, &self.data()[bi * m * n..(bi + 1) * m * n]);
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Sums every axis except the **last**: `(…, C) → (C,)`.
    ///
    /// This is the adjoint of [`Tensor::add_bias_last`], used for bias
    /// gradients of layers operating on `(B, L, C)` data.
    pub fn sum_keep_last(&self) -> Tensor {
        let c = *self.dims().last().expect("sum_keep_last on rank-0 tensor");
        let mut out = scratch::take_zeroed(c);
        if c > 0 {
            for row in self.data().chunks_exact(c) {
                simd::add_assign(&mut out, row);
            }
        }
        Tensor::from_vec(out, &[c])
    }

    /// Sums a rank-3 `(B, C, L)` tensor over batch and time: `→ (C,)`.
    ///
    /// This is the adjoint of [`Tensor::add_bias_channel`], used for bias
    /// gradients of convolution layers.
    pub fn sum_keep_channel(&self) -> Tensor {
        assert_eq!(self.rank(), 3, "sum_keep_channel requires rank 3");
        let (b, c, l) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let mut out = scratch::take_zeroed(c);
        for bi in 0..b {
            for (ci, o) in out.iter_mut().enumerate() {
                *o += simd::sum(&self.data()[(bi * c + ci) * l..(bi * c + ci + 1) * l]);
            }
        }
        Tensor::from_vec(out, &[c])
    }

    /// Per-row squared L2 norms of the last axis: `(…, C) → (rows,)` where
    /// `rows = len / C`.
    ///
    /// Used to turn per-observation reconstruction differences into outlier
    /// scores `‖x_t − x̂_t‖²` (paper Eq. 14).
    pub fn row_sq_norms(&self) -> Vec<f32> {
        let c = *self.dims().last().expect("row_sq_norms on rank-0 tensor");
        if c == 0 {
            return Vec::new();
        }
        self.data().chunks_exact(c).map(simd::sq_sum).collect()
    }
}

/// Squared L2 distance `‖a − b‖²` between two equal-length slices.
///
/// Exactly the single-row form of `a.sub(b)` followed by
/// [`Tensor::row_sq_norms`]: the difference is materialized (into pooled
/// scratch) and summed by the same kernel, so callers that replace a full
/// difference tensor + per-row norms with one row stay **bit-exact**.
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "sq_dist length mismatch");
    let mut diff = scratch::take(a.len());
    diff.extend(a.iter().zip(b).map(|(x, y)| x - y));
    let out = simd::sq_sum(&diff);
    scratch::recycle(diff);
    out
}

#[cfg(test)]
mod tests {
    use crate::{assert_close, Tensor};

    #[test]
    fn global_reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.sum(), 6.0);
        assert_eq!(t.mean(), 1.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), -2.0);
    }

    #[test]
    fn mse_known_value() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![1.0, 0.0, 6.0], &[3]);
        // (0 + 4 + 9) / 3
        assert_close(&[a.mse(&b)], &[13.0 / 3.0], 1e-6);
        assert_eq!(a.mse(&a), 0.0);
    }

    #[test]
    fn sum_axis0_folds_batches() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 2, 2]);
        let s = t.sum_axis0();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.data(), &[12.0, 15.0, 18.0, 21.0]);
    }

    #[test]
    fn sum_keep_last_is_bias_adjoint() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[2, 2, 3]);
        let s = t.sum_keep_last();
        assert_eq!(s.dims(), &[3]);
        assert_eq!(
            s.data(),
            &[
                0.0 + 3.0 + 6.0 + 9.0,
                1.0 + 4.0 + 7.0 + 10.0,
                2.0 + 5.0 + 8.0 + 11.0
            ]
        );
    }

    #[test]
    fn sum_keep_channel_is_channel_bias_adjoint() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[2, 2, 3]);
        let s = t.sum_keep_channel();
        assert_eq!(s.dims(), &[2]);
        // channel 0: rows [0,1,2] and [6,7,8]; channel 1: [3,4,5] and [9,10,11]
        assert_eq!(s.data(), &[24.0, 42.0]);
    }

    #[test]
    fn row_sq_norms_per_observation() {
        let t = Tensor::from_vec(vec![3.0, 4.0, 1.0, 0.0], &[2, 2]);
        assert_eq!(t.row_sq_norms(), vec![25.0, 1.0]);
    }

    #[test]
    fn empty_tensor_reductions() {
        let t = Tensor::zeros(&[0, 3]);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert!(t.row_sq_norms().is_empty());
    }
}
