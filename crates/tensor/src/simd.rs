//! Runtime ISA dispatch and vectorized elementwise kernels.
//!
//! Every hot loop in this crate funnels through this module: the packed
//! GEMM core ([`crate::gemm`]) asks it which instruction set to use, and
//! the bandwidth-bound elementwise kernels (activations, their gradients,
//! reductions, softmax passes, optimizer axpys) call the dispatched
//! helpers below.
//!
//! # Dispatch model
//!
//! The instruction set is detected **once at runtime** — on the first call
//! to [`active`] — via `is_x86_feature_detected!` and cached in an atomic,
//! so the per-kernel cost of dispatch is a single relaxed load. Two
//! overrides force the portable scalar path:
//!
//! * the `CAE_TENSOR_FORCE_SCALAR` environment variable (any value other
//!   than `0`, `false`, or empty), read once at first use;
//! * [`set_force_scalar`], a process-global runtime switch used by the
//!   test suites and `perf_report` to pit the two paths against each
//!   other inside one process.
//!
//! On non-x86_64 targets (or x86_64 without AVX2+FMA) the scalar path is
//! the only path and the overrides are no-ops.
//!
//! # Determinism contract
//!
//! Within one dispatch path results are deterministic and independent of
//! the worker-thread count (see `tests/determinism.rs`). *Across* paths
//! results differ in the last bits — the AVX2 kernels use 8-lane partial
//! accumulators and fused multiply-adds, and the transcendental kernels
//! use a polynomial `exp` — but agree to ≤1e-4 relative tolerance
//! (property-tested in `tests/properties.rs`).

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::OnceLock;

/// Instruction set driving the tensor kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Isa {
    /// Packed AVX2 + FMA microkernels (x86_64, runtime-detected).
    Avx2Fma,
    /// Portable unrolled scalar kernels (always available).
    Scalar,
}

/// Runtime override set by [`set_force_scalar`].
static RUNTIME_FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Cached CPU detection: 0 = not yet probed, 1 = scalar only, 2 = AVX2+FMA.
static DETECTED: AtomicU8 = AtomicU8::new(0);

/// `CAE_TENSOR_FORCE_SCALAR` environment override, read once.
fn env_force_scalar() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("CAE_TENSOR_FORCE_SCALAR")
            .is_ok_and(|v| !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false"))
    })
}

fn detect() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn avx2_detected() -> bool {
    // Relaxed memoization of an idempotent probe: every thread that
    // races past the cache computes the same `detect()` answer, and no
    // other memory is published through `DETECTED` — the worst case is a
    // redundant CPUID. (Single-fn use; A1 audits cross-fn publishes.)
    match DETECTED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let has = detect();
            DETECTED.store(if has { 2 } else { 1 }, Ordering::Relaxed);
            has
        }
    }
}

/// Forces (or releases) the scalar dispatch path at runtime.
///
/// Process-global, like [`crate::par::set_threads`]; tests that flip it
/// must serialize on their own gate. Forcing scalar on a machine without
/// AVX2 is a no-op (scalar is already the only path).
pub fn set_force_scalar(force: bool) {
    // Release/Acquire pairing with `active()`: a dispatch on another
    // thread that observes the flag flip must also observe whatever the
    // flipping test arranged before it (reference buffers, thresholds).
    RUNTIME_FORCE_SCALAR.store(force, Ordering::Release);
}

/// The instruction set the kernels will use right now.
pub fn active() -> Isa {
    if RUNTIME_FORCE_SCALAR.load(Ordering::Acquire) || env_force_scalar() || !avx2_detected() {
        Isa::Scalar
    } else {
        Isa::Avx2Fma
    }
}

/// Short stable name of the active path (`"avx2+fma"` / `"scalar"`),
/// recorded by `perf_report` in `BENCH_tensor.json`.
pub fn active_name() -> &'static str {
    match active() {
        Isa::Avx2Fma => "avx2+fma",
        Isa::Scalar => "scalar",
    }
}

/// True when the packed AVX2 kernels should run.
#[inline]
pub(crate) fn avx2_active() -> bool {
    active() == Isa::Avx2Fma
}

// ---------------------------------------------------------------------
// Dispatched elementwise kernels
// ---------------------------------------------------------------------
//
// Each helper has the same shape: a safe wrapper that dispatches on
// [`active`], an AVX2 implementation behind `#[target_feature]`, and a
// scalar implementation that is also the non-x86_64 fallback.

macro_rules! dispatch {
    ($($avx2_call:tt)*) => {
        #[cfg(target_arch = "x86_64")]
        if avx2_active() {
            // SAFETY: `avx2_active` implies AVX2+FMA were detected at runtime.
            unsafe { avx2::$($avx2_call)* };
            return;
        }
    };
}

macro_rules! dispatch_ret {
    ($($avx2_call:tt)*) => {
        #[cfg(target_arch = "x86_64")]
        if avx2_active() {
            // SAFETY: `avx2_active` implies AVX2+FMA were detected at runtime.
            return unsafe { avx2::$($avx2_call)* };
        }
    };
}

/// `dst[i] = max(src[i], 0)`.
pub(crate) fn relu(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    dispatch!(relu(dst, src));
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = x.max(0.0);
    }
}

/// `dst[i] = src[i] >= 0 ? src[i] : alpha * src[i]`.
pub(crate) fn leaky_relu(dst: &mut [f32], src: &[f32], alpha: f32) {
    debug_assert_eq!(dst.len(), src.len());
    dispatch!(leaky_relu(dst, src, alpha));
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = if x >= 0.0 { x } else { alpha * x };
    }
}

/// Numerically stable logistic sigmoid of a scalar.
#[inline]
pub(crate) fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// `dst[i] = sigmoid(src[i])`.
pub(crate) fn sigmoid(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    dispatch!(sigmoid(dst, src));
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = sigmoid_scalar(x);
    }
}

/// `dst[i] = tanh(src[i])`.
pub(crate) fn tanh(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    dispatch!(tanh(dst, src));
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = x.tanh();
    }
}

/// Relu backward from the forward **output**: `dst = y > 0 ? g : 0`.
pub(crate) fn relu_grad(dst: &mut [f32], y: &[f32], g: &[f32]) {
    debug_assert_eq!(dst.len(), y.len());
    debug_assert_eq!(dst.len(), g.len());
    dispatch!(relu_grad(dst, y, g));
    for ((d, &yv), &gv) in dst.iter_mut().zip(y).zip(g) {
        *d = if yv > 0.0 { gv } else { 0.0 };
    }
}

/// Sigmoid backward from the forward output: `dst = g · y · (1 − y)`.
pub(crate) fn sigmoid_grad(dst: &mut [f32], y: &[f32], g: &[f32]) {
    debug_assert_eq!(dst.len(), y.len());
    debug_assert_eq!(dst.len(), g.len());
    dispatch!(sigmoid_grad(dst, y, g));
    for ((d, &yv), &gv) in dst.iter_mut().zip(y).zip(g) {
        *d = gv * yv * (1.0 - yv);
    }
}

/// Tanh backward from the forward output: `dst = g · (1 − y²)`.
pub(crate) fn tanh_grad(dst: &mut [f32], y: &[f32], g: &[f32]) {
    debug_assert_eq!(dst.len(), y.len());
    debug_assert_eq!(dst.len(), g.len());
    dispatch!(tanh_grad(dst, y, g));
    for ((d, &yv), &gv) in dst.iter_mut().zip(y).zip(g) {
        *d = gv * (1.0 - yv * yv);
    }
}

/// Sum of all elements (8-lane partial accumulators on AVX2).
pub(crate) fn sum(x: &[f32]) -> f32 {
    dispatch_ret!(sum(x));
    x.iter().sum()
}

/// Sum of squares.
pub(crate) fn sq_sum(x: &[f32]) -> f32 {
    dispatch_ret!(sq_sum(x));
    x.iter().map(|&v| v * v).sum()
}

/// Sum of squared differences `Σ (a[i] − b[i])²`.
pub(crate) fn sq_diff_sum(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    dispatch_ret!(sq_diff_sum(a, b));
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Maximum element (−∞ for an empty slice).
pub(crate) fn max(x: &[f32]) -> f32 {
    dispatch_ret!(max(x));
    x.iter().copied().fold(f32::NEG_INFINITY, f32::max)
}

/// Minimum element (+∞ for an empty slice).
pub(crate) fn min(x: &[f32]) -> f32 {
    dispatch_ret!(min(x));
    x.iter().copied().fold(f32::INFINITY, f32::min)
}

/// `acc[i] += x[i]`.
pub(crate) fn add_assign(acc: &mut [f32], x: &[f32]) {
    debug_assert_eq!(acc.len(), x.len());
    dispatch!(add_assign(acc, x));
    for (a, &v) in acc.iter_mut().zip(x) {
        *a += v;
    }
}

/// `acc[i] += scale * x[i]` (the optimizer's axpy).
pub(crate) fn axpy(acc: &mut [f32], x: &[f32], scale: f32) {
    debug_assert_eq!(acc.len(), x.len());
    dispatch!(axpy(acc, x, scale));
    for (a, &v) in acc.iter_mut().zip(x) {
        *a += scale * v;
    }
}

/// `x[i] *= scale`.
pub(crate) fn scale_in_place(x: &mut [f32], scale: f32) {
    dispatch!(scale_in_place(x, scale));
    for v in x.iter_mut() {
        *v *= scale;
    }
}

/// One softmax row, in place: subtract the row max, exponentiate,
/// normalize to sum 1. The row must be non-empty.
pub(crate) fn softmax_row(row: &mut [f32]) {
    dispatch!(softmax_row(row));
    let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut s = 0.0;
    for v in row.iter_mut() {
        *v = (*v - m).exp();
        s += *v;
    }
    let inv = 1.0 / s;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

// ---------------------------------------------------------------------
// AVX2 + FMA implementations
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use core::arch::x86_64::*;

    /// Applies `body(lane_count_8_chunk)` over 8-wide chunks and
    /// `tail(index)` over the remainder.
    macro_rules! lanes {
        ($len:expr, $i:ident, $body:block, $t:ident, $tail:block) => {
            let mut $i = 0usize;
            while $i + 8 <= $len {
                $body
                $i += 8;
            }
            for $t in $i..$len {
                $tail
            }
        };
    }

    /// # Safety
    ///
    /// AVX2+FMA must be runtime-verified (the dispatch macros do), and
    /// `dst.len() >= src.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn relu(dst: &mut [f32], src: &[f32]) {
        debug_assert!(dst.len() >= src.len());
        let zero = _mm256_setzero_ps();
        lanes!(
            src.len(),
            i,
            {
                // SAFETY: `i + 8 <= src.len() <= dst.len()` per the
                // lanes! loop bound and the length contract.
                unsafe {
                    let v = _mm256_loadu_ps(src.as_ptr().add(i));
                    _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_max_ps(v, zero));
                }
            },
            t,
            {
                dst[t] = src[t].max(0.0);
            }
        );
    }

    /// # Safety
    ///
    /// AVX2+FMA must be runtime-verified, and `dst.len() >= src.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn leaky_relu(dst: &mut [f32], src: &[f32], alpha: f32) {
        debug_assert!(dst.len() >= src.len());
        let a = _mm256_set1_ps(alpha);
        let zero = _mm256_setzero_ps();
        lanes!(
            src.len(),
            i,
            {
                // SAFETY: `i + 8 <= src.len() <= dst.len()` per the
                // lanes! loop bound and the length contract.
                unsafe {
                    let v = _mm256_loadu_ps(src.as_ptr().add(i));
                    let neg = _mm256_mul_ps(v, a);
                    // x >= 0 ? x : alpha·x
                    let mask = _mm256_cmp_ps(v, zero, _CMP_GE_OQ);
                    _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_blendv_ps(neg, v, mask));
                }
            },
            t,
            {
                let x = src[t];
                dst[t] = if x >= 0.0 { x } else { alpha * x };
            }
        );
    }

    /// Polynomial `exp` on 8 lanes (Cephes-style: range-reduce by powers
    /// of two, degree-5 polynomial on the remainder). Inputs are clamped
    /// to the finite range of `f32` exponentials; relative error is
    /// ≈1e-7, far inside the crate's 1e-4 cross-path tolerance.
    ///
    /// # Safety
    ///
    /// AVX2+FMA must be runtime-verified; the body is pure lane
    /// arithmetic (no memory access).
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::excessive_precision)]
    unsafe fn exp_ps(x: __m256) -> __m256 {
        const EXP_HI: f32 = 88.376_26;
        const EXP_LO: f32 = -88.376_26;
        const LOG2EF: f32 = std::f32::consts::LOG2_E;
        const C1: f32 = 0.693_359_375; // ln 2, high part
        const C2: f32 = -2.121_944_4e-4; // ln 2, low part
        const P0: f32 = 1.987_569_15e-4;
        const P1: f32 = 1.398_199_95e-3;
        const P2: f32 = 8.333_451_9e-3;
        const P3: f32 = 4.166_579_6e-2;
        const P4: f32 = 1.666_666_55e-1;
        const P5: f32 = 5.000_000_1e-1;

        let x = _mm256_min_ps(x, _mm256_set1_ps(EXP_HI));
        let x = _mm256_max_ps(x, _mm256_set1_ps(EXP_LO));

        // n = round(x / ln 2)
        let fx = _mm256_round_ps(
            _mm256_mul_ps(x, _mm256_set1_ps(LOG2EF)),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC,
        );
        // r = x − n·ln2 (two-part for accuracy)
        let r = _mm256_fnmadd_ps(fx, _mm256_set1_ps(C1), x);
        let r = _mm256_fnmadd_ps(fx, _mm256_set1_ps(C2), r);
        let r2 = _mm256_mul_ps(r, r);

        let mut p = _mm256_set1_ps(P0);
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(P1));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(P2));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(P3));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(P4));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(P5));
        p = _mm256_fmadd_ps(p, r2, r);
        let p = _mm256_add_ps(p, _mm256_set1_ps(1.0));

        // Scale by 2^n through the exponent bits.
        let n = _mm256_cvtps_epi32(fx);
        let pow2n = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            n,
            _mm256_set1_epi32(127),
        )));
        _mm256_mul_ps(p, pow2n)
    }

    /// 8-lane stable sigmoid: `s = 1 / (1 + exp(−|x|))`, mirrored to
    /// `1 − s` for negative inputs (`σ(−a) = 1 − σ(a)`).
    ///
    /// # Safety
    ///
    /// AVX2+FMA must be runtime-verified; pure lane arithmetic.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn sigmoid_ps(v: __m256) -> __m256 {
        let sign_mask = _mm256_set1_ps(-0.0);
        let one = _mm256_set1_ps(1.0);
        let absv = _mm256_andnot_ps(sign_mask, v);
        // SAFETY: this fn's own contract already requires AVX2+FMA.
        let e = unsafe { exp_ps(_mm256_sub_ps(_mm256_setzero_ps(), absv)) };
        let s = _mm256_div_ps(one, _mm256_add_ps(one, e));
        let mirrored = _mm256_sub_ps(one, s);
        let neg = _mm256_cmp_ps(v, _mm256_setzero_ps(), _CMP_LT_OQ);
        _mm256_blendv_ps(s, mirrored, neg)
    }

    /// # Safety
    ///
    /// AVX2+FMA must be runtime-verified, and `dst.len() >= src.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn sigmoid(dst: &mut [f32], src: &[f32]) {
        debug_assert!(dst.len() >= src.len());
        lanes!(
            src.len(),
            i,
            {
                // SAFETY: `i + 8 <= src.len() <= dst.len()` per the
                // lanes! loop bound and the length contract.
                unsafe {
                    let v = _mm256_loadu_ps(src.as_ptr().add(i));
                    _mm256_storeu_ps(dst.as_mut_ptr().add(i), sigmoid_ps(v));
                }
            },
            t,
            {
                dst[t] = super::sigmoid_scalar(src[t]);
            }
        );
    }

    /// # Safety
    ///
    /// AVX2+FMA must be runtime-verified, and `dst.len() >= src.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn tanh(dst: &mut [f32], src: &[f32]) {
        debug_assert!(dst.len() >= src.len());
        // tanh(x) = 2·σ(2x) − 1
        let two = _mm256_set1_ps(2.0);
        let one = _mm256_set1_ps(1.0);
        lanes!(
            src.len(),
            i,
            {
                // SAFETY: `i + 8 <= src.len() <= dst.len()` per the
                // lanes! loop bound and the length contract.
                unsafe {
                    let v = _mm256_loadu_ps(src.as_ptr().add(i));
                    let s = sigmoid_ps(_mm256_mul_ps(v, two));
                    _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_fmsub_ps(two, s, one));
                }
            },
            t,
            {
                dst[t] = src[t].tanh();
            }
        );
    }

    /// # Safety
    ///
    /// AVX2+FMA must be runtime-verified, and `y`/`g` must be at least
    /// `dst.len()` long.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn relu_grad(dst: &mut [f32], y: &[f32], g: &[f32]) {
        debug_assert!(y.len() >= dst.len() && g.len() >= dst.len());
        let zero = _mm256_setzero_ps();
        lanes!(
            dst.len(),
            i,
            {
                // SAFETY: `i + 8 <= dst.len() <= y.len(), g.len()` per
                // the lanes! loop bound and the length contract.
                unsafe {
                    let yv = _mm256_loadu_ps(y.as_ptr().add(i));
                    let gv = _mm256_loadu_ps(g.as_ptr().add(i));
                    let mask = _mm256_cmp_ps(yv, zero, _CMP_GT_OQ);
                    _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_and_ps(gv, mask));
                }
            },
            t,
            {
                dst[t] = if y[t] > 0.0 { g[t] } else { 0.0 };
            }
        );
    }

    /// # Safety
    ///
    /// AVX2+FMA must be runtime-verified, and `y`/`g` must be at least
    /// `dst.len()` long.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn sigmoid_grad(dst: &mut [f32], y: &[f32], g: &[f32]) {
        debug_assert!(y.len() >= dst.len() && g.len() >= dst.len());
        let one = _mm256_set1_ps(1.0);
        lanes!(
            dst.len(),
            i,
            {
                // SAFETY: `i + 8 <= dst.len() <= y.len(), g.len()` per
                // the lanes! loop bound and the length contract.
                unsafe {
                    let yv = _mm256_loadu_ps(y.as_ptr().add(i));
                    let gv = _mm256_loadu_ps(g.as_ptr().add(i));
                    let d = _mm256_mul_ps(_mm256_mul_ps(gv, yv), _mm256_sub_ps(one, yv));
                    _mm256_storeu_ps(dst.as_mut_ptr().add(i), d);
                }
            },
            t,
            {
                dst[t] = g[t] * y[t] * (1.0 - y[t]);
            }
        );
    }

    /// # Safety
    ///
    /// AVX2+FMA must be runtime-verified, and `y`/`g` must be at least
    /// `dst.len()` long.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn tanh_grad(dst: &mut [f32], y: &[f32], g: &[f32]) {
        debug_assert!(y.len() >= dst.len() && g.len() >= dst.len());
        let one = _mm256_set1_ps(1.0);
        lanes!(
            dst.len(),
            i,
            {
                // SAFETY: `i + 8 <= dst.len() <= y.len(), g.len()` per
                // the lanes! loop bound and the length contract.
                unsafe {
                    let yv = _mm256_loadu_ps(y.as_ptr().add(i));
                    let gv = _mm256_loadu_ps(g.as_ptr().add(i));
                    let d = _mm256_mul_ps(gv, _mm256_fnmadd_ps(yv, yv, one));
                    _mm256_storeu_ps(dst.as_mut_ptr().add(i), d);
                }
            },
            t,
            {
                dst[t] = g[t] * (1.0 - y[t] * y[t]);
            }
        );
    }

    /// Horizontal sum of the 8 lanes.
    ///
    /// # Safety
    ///
    /// AVX2+FMA must be runtime-verified; pure lane arithmetic.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps::<1>(v);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps::<1>(s, s));
        _mm_cvtss_f32(s)
    }

    /// # Safety
    ///
    /// AVX2+FMA must be runtime-verified.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn sum(x: &[f32]) -> f32 {
        let mut acc = _mm256_setzero_ps();
        let mut tail = 0.0f32;
        lanes!(
            x.len(),
            i,
            {
                // SAFETY: `i + 8 <= x.len()` per the lanes! loop bound.
                acc = unsafe { _mm256_add_ps(acc, _mm256_loadu_ps(x.as_ptr().add(i))) };
            },
            t,
            {
                tail += x[t];
            }
        );
        // SAFETY: this fn's own contract already requires AVX2+FMA.
        unsafe { hsum(acc) + tail }
    }

    /// # Safety
    ///
    /// AVX2+FMA must be runtime-verified.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn sq_sum(x: &[f32]) -> f32 {
        let mut acc = _mm256_setzero_ps();
        let mut tail = 0.0f32;
        lanes!(
            x.len(),
            i,
            {
                // SAFETY: `i + 8 <= x.len()` per the lanes! loop bound.
                unsafe {
                    let v = _mm256_loadu_ps(x.as_ptr().add(i));
                    acc = _mm256_fmadd_ps(v, v, acc);
                }
            },
            t,
            {
                tail += x[t] * x[t];
            }
        );
        // SAFETY: this fn's own contract already requires AVX2+FMA.
        unsafe { hsum(acc) + tail }
    }

    /// # Safety
    ///
    /// AVX2+FMA must be runtime-verified, and `b.len() >= a.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn sq_diff_sum(a: &[f32], b: &[f32]) -> f32 {
        debug_assert!(b.len() >= a.len());
        let mut acc = _mm256_setzero_ps();
        let mut tail = 0.0f32;
        lanes!(
            a.len(),
            i,
            {
                // SAFETY: `i + 8 <= a.len() <= b.len()` per the lanes!
                // loop bound and the length contract.
                unsafe {
                    let d = _mm256_sub_ps(
                        _mm256_loadu_ps(a.as_ptr().add(i)),
                        _mm256_loadu_ps(b.as_ptr().add(i)),
                    );
                    acc = _mm256_fmadd_ps(d, d, acc);
                }
            },
            t,
            {
                let d = a[t] - b[t];
                tail += d * d;
            }
        );
        // SAFETY: this fn's own contract already requires AVX2+FMA.
        unsafe { hsum(acc) + tail }
    }

    /// Horizontal max of the 8 lanes.
    ///
    /// # Safety
    ///
    /// AVX2+FMA must be runtime-verified; pure lane arithmetic.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hmax(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps::<1>(v);
        let m = _mm_max_ps(lo, hi);
        let m = _mm_max_ps(m, _mm_movehl_ps(m, m));
        let m = _mm_max_ss(m, _mm_shuffle_ps::<1>(m, m));
        _mm_cvtss_f32(m)
    }

    /// # Safety
    ///
    /// AVX2+FMA must be runtime-verified.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn max(x: &[f32]) -> f32 {
        let mut acc = _mm256_set1_ps(f32::NEG_INFINITY);
        let mut tail = f32::NEG_INFINITY;
        lanes!(
            x.len(),
            i,
            {
                // SAFETY: `i + 8 <= x.len()` per the lanes! loop bound.
                acc = unsafe { _mm256_max_ps(acc, _mm256_loadu_ps(x.as_ptr().add(i))) };
            },
            t,
            {
                tail = tail.max(x[t]);
            }
        );
        // SAFETY: this fn's own contract already requires AVX2+FMA.
        unsafe { hmax(acc).max(tail) }
    }

    /// # Safety
    ///
    /// AVX2+FMA must be runtime-verified.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn min(x: &[f32]) -> f32 {
        let mut acc = _mm256_set1_ps(f32::INFINITY);
        let mut tail = f32::INFINITY;
        lanes!(
            x.len(),
            i,
            {
                // SAFETY: `i + 8 <= x.len()` per the lanes! loop bound.
                acc = unsafe { _mm256_min_ps(acc, _mm256_loadu_ps(x.as_ptr().add(i))) };
            },
            t,
            {
                tail = tail.min(x[t]);
            }
        );
        // Reuse hmax's shuffle pattern through negation-free lane folds.
        let lo = _mm256_castps256_ps128(acc);
        let hi = _mm256_extractf128_ps::<1>(acc);
        let m = _mm_min_ps(lo, hi);
        let m = _mm_min_ps(m, _mm_movehl_ps(m, m));
        let m = _mm_min_ss(m, _mm_shuffle_ps::<1>(m, m));
        _mm_cvtss_f32(m).min(tail)
    }

    /// # Safety
    ///
    /// AVX2+FMA must be runtime-verified, and `x.len() >= acc.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn add_assign(acc: &mut [f32], x: &[f32]) {
        debug_assert!(x.len() >= acc.len());
        lanes!(
            acc.len(),
            i,
            {
                // SAFETY: `i + 8 <= acc.len() <= x.len()` per the lanes!
                // loop bound and the length contract.
                unsafe {
                    let a = _mm256_loadu_ps(acc.as_ptr().add(i));
                    let v = _mm256_loadu_ps(x.as_ptr().add(i));
                    _mm256_storeu_ps(acc.as_mut_ptr().add(i), _mm256_add_ps(a, v));
                }
            },
            t,
            {
                acc[t] += x[t];
            }
        );
    }

    /// # Safety
    ///
    /// AVX2+FMA must be runtime-verified, and `x.len() >= acc.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn axpy(acc: &mut [f32], x: &[f32], scale: f32) {
        debug_assert!(x.len() >= acc.len());
        let s = _mm256_set1_ps(scale);
        lanes!(
            acc.len(),
            i,
            {
                // SAFETY: `i + 8 <= acc.len() <= x.len()` per the lanes!
                // loop bound and the length contract.
                unsafe {
                    let a = _mm256_loadu_ps(acc.as_ptr().add(i));
                    let v = _mm256_loadu_ps(x.as_ptr().add(i));
                    _mm256_storeu_ps(acc.as_mut_ptr().add(i), _mm256_fmadd_ps(v, s, a));
                }
            },
            t,
            {
                acc[t] += scale * x[t];
            }
        );
    }

    /// # Safety
    ///
    /// AVX2+FMA must be runtime-verified.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn scale_in_place(x: &mut [f32], scale: f32) {
        let s = _mm256_set1_ps(scale);
        lanes!(
            x.len(),
            i,
            {
                // SAFETY: `i + 8 <= x.len()` per the lanes! loop bound.
                unsafe {
                    let v = _mm256_loadu_ps(x.as_ptr().add(i));
                    _mm256_storeu_ps(x.as_mut_ptr().add(i), _mm256_mul_ps(v, s));
                }
            },
            t,
            {
                x[t] *= scale;
            }
        );
    }

    /// # Safety
    ///
    /// AVX2+FMA must be runtime-verified.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn softmax_row(row: &mut [f32]) {
        // SAFETY: this fn's own contract already requires AVX2+FMA (the
        // sibling kernels called below inherit the same argument).
        let m = unsafe { max(row) };
        let mv = _mm256_set1_ps(m);
        let mut acc = _mm256_setzero_ps();
        let mut tail = 0.0f32;
        lanes!(
            row.len(),
            i,
            {
                // SAFETY: `i + 8 <= row.len()` per the lanes! loop bound.
                unsafe {
                    let v = exp_ps(_mm256_sub_ps(_mm256_loadu_ps(row.as_ptr().add(i)), mv));
                    _mm256_storeu_ps(row.as_mut_ptr().add(i), v);
                    acc = _mm256_add_ps(acc, v);
                }
            },
            t,
            {
                // Keep the tail on the same polynomial as the lanes so the
                // row is internally consistent.
                let mut one = [0.0f32; 8];
                // SAFETY: `one` is a stack array of exactly 8 floats.
                unsafe {
                    _mm256_storeu_ps(one.as_mut_ptr(), exp_ps(_mm256_set1_ps(row[t] - m)));
                }
                row[t] = one[0];
                tail += one[0];
            }
        );
        // SAFETY: AVX2+FMA per this fn's contract; `scale_in_place`
        // stays inside `row`.
        unsafe {
            let inv = 1.0 / (hsum(acc) + tail);
            scale_in_place(row, inv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar vs (possibly) vector paths must agree tightly; on non-AVX2
    /// hosts both sides are scalar and the assertions are trivial.
    #[test]
    fn vector_transcendentals_match_scalar() {
        let xs: Vec<f32> = (-400..=400).map(|i| i as f32 * 0.05).collect();
        let mut sig = vec![0.0f32; xs.len()];
        let mut th = vec![0.0f32; xs.len()];
        sigmoid(&mut sig, &xs);
        tanh(&mut th, &xs);
        for (i, &x) in xs.iter().enumerate() {
            let rs = sigmoid_scalar(x);
            let rt = x.tanh();
            assert!(
                (sig[i] - rs).abs() <= 1e-5 * rs.abs().max(1.0),
                "sigmoid({x}) = {} vs {rs}",
                sig[i]
            );
            assert!(
                (th[i] - rt).abs() <= 2e-5 * rt.abs().max(1.0),
                "tanh({x}) = {} vs {rt}",
                th[i]
            );
        }
    }

    #[test]
    fn reductions_match_scalar_references() {
        let xs: Vec<f32> = (0..103).map(|i| ((i * 37) % 19) as f32 - 9.0).collect();
        let ys: Vec<f32> = (0..103).map(|i| ((i * 11) % 23) as f32 - 11.0).collect();
        let scalar_sum: f32 = xs.iter().sum();
        assert!((sum(&xs) - scalar_sum).abs() < 1e-3);
        let scalar_sq: f32 = xs.iter().map(|&v| v * v).sum();
        assert!((sq_sum(&xs) - scalar_sq).abs() < 1e-2);
        let scalar_sd: f32 = xs.iter().zip(&ys).map(|(&a, &b)| (a - b) * (a - b)).sum();
        assert!((sq_diff_sum(&xs, &ys) - scalar_sd).abs() < 1e-2);
        assert_eq!(max(&xs), 9.0);
        assert_eq!(min(&xs), -9.0);
        assert_eq!(max(&[]), f32::NEG_INFINITY);
        assert_eq!(min(&[]), f32::INFINITY);
    }

    #[test]
    fn force_scalar_round_trips() {
        // Not gated: other tests in this binary don't flip the override.
        let before = active();
        set_force_scalar(true);
        assert_eq!(active(), Isa::Scalar);
        assert_eq!(active_name(), "scalar");
        set_force_scalar(false);
        assert_eq!(active(), before);
    }
}
