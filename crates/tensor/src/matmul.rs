//! Matrix multiplication kernels.
//!
//! Every variant dispatches at runtime (see [`crate::simd`]): on x86_64
//! with AVX2+FMA the contraction routes through the packed 6×16
//! register-tile GEMM core in [`crate::gemm`]; everywhere else (or under
//! the scalar override) it runs the portable register-blocked loops in
//! this file. The scalar 2-D kernel unrolls the `ikj` loop four deep
//! along `k`, so each pass over an output row folds in four rows of `B`
//! with four independent fused multiply-adds — branch-free, so the
//! compiler can autovectorize with the baseline instruction set.
//! Transposed variants use the same 4-way blocking; dot-product kernels
//! accumulate in four partial sums.
//!
//! Large 2-D products parallelize over output-row blocks and batched
//! kernels over batch elements, both through the persistent worker pool
//! (see [`crate::par`]). Output buffers come from the thread-local
//! scratch pool ([`crate::scratch`]).

#[cfg(target_arch = "x86_64")]
use crate::gemm;
use crate::Tensor;
use crate::{par, scratch};

impl Tensor {
    /// 2-D matrix product: `(M, K) · (K, N) → (M, N)`.
    ///
    /// Rows of the output are computed independently, so large products
    /// fan out over the worker pool in contiguous row blocks.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rank(),
            2,
            "matmul lhs must be rank 2, got {}",
            self.rank()
        );
        assert_eq!(
            other.rank(),
            2,
            "matmul rhs must be rank 2, got {}",
            other.rank()
        );
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul inner dims differ: {k} vs {k2}");
        let mut out = scratch::take_zeroed(m * n);
        if n > 0 {
            let lhs = self.data();
            let rhs = other.data();
            #[cfg(target_arch = "x86_64")]
            if gemm::enabled(m * k * n) {
                gemm::matmul_nn(lhs, rhs, &mut out, m, k, n);
                return Tensor::from_vec(out, &[m, n]);
            }
            // Row-parallel: each chunk is one output row.
            par::for_each_chunk(&mut out, n, |i, orow| {
                matmul_into(&lhs[i * k..(i + 1) * k], rhs, orow, 1, k, n);
            });
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// 2-D product with the left operand transposed: `Aᵀ · B`, where
    /// `A: (K, M)`, `B: (K, N)`, producing `(M, N)`.
    ///
    /// Equivalent to `self.transpose().matmul(other)` without materializing
    /// the transpose.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_tn lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_tn rhs must be rank 2");
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_tn inner dims differ: {k} vs {k2}");
        let mut out = scratch::take_zeroed(m * n);
        #[cfg(target_arch = "x86_64")]
        if n > 0 && gemm::enabled(m * k * n) {
            gemm::matmul_tn(self.data(), other.data(), &mut out, k, m, n);
            return Tensor::from_vec(out, &[m, n]);
        }
        matmul_tn_into(self.data(), other.data(), &mut out, k, m, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// 2-D product with the right operand transposed: `A · Bᵀ`, where
    /// `A: (M, K)`, `B: (N, K)`, producing `(M, N)`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_nt lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_nt rhs must be rank 2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_nt inner dims differ: {k} vs {k2}");
        let mut out = scratch::take_zeroed(m * n);
        if n > 0 {
            let lhs = self.data();
            let rhs = other.data();
            #[cfg(target_arch = "x86_64")]
            if gemm::enabled(m * k * n) {
                gemm::matmul_nt(lhs, rhs, &mut out, m, k, n);
                return Tensor::from_vec(out, &[m, n]);
            }
            par::for_each_chunk(&mut out, n, |i, orow| {
                let arow = &lhs[i * k..(i + 1) * k];
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = dot(arow, &rhs[j * k..(j + 1) * k]);
                }
            });
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Batched 3-D matrix product: `(B, M, K) · (B, K, N) → (B, M, N)`.
    ///
    /// Batches are processed in parallel when the global parallelism level
    /// (see [`par::set_threads`]) is greater than one.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rank(),
            3,
            "bmm lhs must be rank 3, got {}",
            self.rank()
        );
        assert_eq!(
            other.rank(),
            3,
            "bmm rhs must be rank 3, got {}",
            other.rank()
        );
        let (b, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, k2, n) = (other.dims()[0], other.dims()[1], other.dims()[2]);
        assert_eq!(b, b2, "bmm batch dims differ: {b} vs {b2}");
        assert_eq!(k, k2, "bmm inner dims differ: {k} vs {k2}");
        let mut out = scratch::take_zeroed(b * m * n);
        {
            let lhs = self.data();
            let rhs = other.data();
            #[cfg(target_arch = "x86_64")]
            if gemm::enabled(m * k * n) {
                par::for_each_chunk(&mut out, m * n, |bi, chunk| {
                    let a = &lhs[bi * m * k..(bi + 1) * m * k];
                    let bdat = &rhs[bi * k * n..(bi + 1) * k * n];
                    gemm::matmul_nn(a, bdat, chunk, m, k, n);
                });
                return Tensor::from_vec(out, &[b, m, n]);
            }
            par::for_each_chunk(&mut out, m * n, |bi, chunk| {
                let a = &lhs[bi * m * k..(bi + 1) * m * k];
                let bdat = &rhs[bi * k * n..(bi + 1) * k * n];
                matmul_into(a, bdat, chunk, m, k, n);
            });
        }
        Tensor::from_vec(out, &[b, m, n])
    }

    /// Batched product with the right operand transposed:
    /// `(B, M, K) · (B, N, K)ᵀ → (B, M, N)`.
    ///
    /// This is the attention-score kernel `Z · Eᵀ` (paper Eq. 7) without
    /// materializing the transpose.
    pub fn bmm_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm_nt lhs must be rank 3");
        assert_eq!(other.rank(), 3, "bmm_nt rhs must be rank 3");
        let (b, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, n, k2) = (other.dims()[0], other.dims()[1], other.dims()[2]);
        assert_eq!(b, b2, "bmm_nt batch dims differ: {b} vs {b2}");
        assert_eq!(k, k2, "bmm_nt inner dims differ: {k} vs {k2}");
        let mut out = scratch::take_zeroed(b * m * n);
        {
            let lhs = self.data();
            let rhs = other.data();
            #[cfg(target_arch = "x86_64")]
            if gemm::enabled(m * k * n) {
                par::for_each_chunk(&mut out, m * n, |bi, chunk| {
                    let a = &lhs[bi * m * k..(bi + 1) * m * k];
                    let bdat = &rhs[bi * n * k..(bi + 1) * n * k];
                    gemm::matmul_nt(a, bdat, chunk, m, k, n);
                });
                return Tensor::from_vec(out, &[b, m, n]);
            }
            par::for_each_chunk(&mut out, m * n, |bi, chunk| {
                let a = &lhs[bi * m * k..(bi + 1) * m * k];
                let bdat = &rhs[bi * n * k..(bi + 1) * n * k];
                for i in 0..m {
                    let arow = &a[i * k..(i + 1) * k];
                    let orow = &mut chunk[i * n..(i + 1) * n];
                    for (j, o) in orow.iter_mut().enumerate() {
                        *o = dot(arow, &bdat[j * k..(j + 1) * k]);
                    }
                }
            });
        }
        Tensor::from_vec(out, &[b, m, n])
    }

    /// Batched product with the left operand transposed:
    /// `(B, K, M)ᵀ · (B, K, N) → (B, M, N)`.
    pub fn bmm_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm_tn lhs must be rank 3");
        assert_eq!(other.rank(), 3, "bmm_tn rhs must be rank 3");
        let (b, k, m) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, k2, n) = (other.dims()[0], other.dims()[1], other.dims()[2]);
        assert_eq!(b, b2, "bmm_tn batch dims differ: {b} vs {b2}");
        assert_eq!(k, k2, "bmm_tn inner dims differ: {k} vs {k2}");
        let mut out = scratch::take_zeroed(b * m * n);
        {
            let lhs = self.data();
            let rhs = other.data();
            #[cfg(target_arch = "x86_64")]
            if gemm::enabled(m * k * n) {
                par::for_each_chunk(&mut out, m * n, |bi, chunk| {
                    let a = &lhs[bi * k * m..(bi + 1) * k * m];
                    let bdat = &rhs[bi * k * n..(bi + 1) * k * n];
                    gemm::matmul_tn(a, bdat, chunk, k, m, n);
                });
                return Tensor::from_vec(out, &[b, m, n]);
            }
            par::for_each_chunk(&mut out, m * n, |bi, chunk| {
                let a = &lhs[bi * k * m..(bi + 1) * k * m];
                let bdat = &rhs[bi * k * n..(bi + 1) * k * n];
                matmul_tn_into(a, bdat, chunk, k, m, n);
            });
        }
        Tensor::from_vec(out, &[b, m, n])
    }
}

/// Dot product of two equal-length slices, accumulated in four partial
/// sums so the reduction carries four independent dependency chains.
#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let blocks = a.len() / 4 * 4;
    let (a4, a_rem) = a.split_at(blocks);
    let (b4, b_rem) = b.split_at(blocks);
    let mut acc = [0.0f32; 4];
    for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (&x, &y) in a_rem.iter().zip(b_rem.iter()) {
        sum += x * y;
    }
    sum
}

/// `out += A · B` into a zeroed buffer, `A: (m, k)`, `B: (k, n)`.
///
/// Register-blocked `ikj`: the `k` loop is unrolled four deep, so one pass
/// over the output row folds in four rows of `B` with independent FMAs.
/// The inner loop is a branch-free zip over five equal-length slices —
/// bounds checks are elided and the loop vectorizes.
fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        let mut p = 0;
        while p + 4 <= k {
            let (a0, a1, a2, a3) = (arow[p], arow[p + 1], arow[p + 2], arow[p + 3]);
            let b0 = &b[p * n..(p + 1) * n];
            let b1 = &b[(p + 1) * n..(p + 2) * n];
            let b2 = &b[(p + 2) * n..(p + 3) * n];
            let b3 = &b[(p + 3) * n..(p + 4) * n];
            for ((((o, &v0), &v1), &v2), &v3) in orow.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
                *o += a0 * v0 + a1 * v1 + a2 * v2 + a3 * v3;
            }
            p += 4;
        }
        for pp in p..k {
            let av = arow[pp];
            let brow = &b[pp * n..(pp + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// `out += Aᵀ · B` into a zeroed buffer, `A: (k, m)`, `B: (k, n)`.
///
/// Same 4-way `k` blocking as [`matmul_into`], reading four rows of `A`
/// and `B` per pass.
fn matmul_tn_into(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let mut p = 0;
    while p + 4 <= k {
        let a0 = &a[p * m..(p + 1) * m];
        let a1 = &a[(p + 1) * m..(p + 2) * m];
        let a2 = &a[(p + 2) * m..(p + 3) * m];
        let a3 = &a[(p + 3) * m..(p + 4) * m];
        let b0 = &b[p * n..(p + 1) * n];
        let b1 = &b[(p + 1) * n..(p + 2) * n];
        let b2 = &b[(p + 2) * n..(p + 3) * n];
        let b3 = &b[(p + 3) * n..(p + 4) * n];
        for i in 0..m {
            let (c0, c1, c2, c3) = (a0[i], a1[i], a2[i], a3[i]);
            let orow = &mut out[i * n..(i + 1) * n];
            for ((((o, &v0), &v1), &v2), &v3) in orow.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
                *o += c0 * v0 + c1 * v1 + c2 * v2 + c3 * v3;
            }
        }
        p += 4;
    }
    for pp in p..k {
        let arow = &a[pp * m..(pp + 1) * m];
        let brow = &b[pp * n..(pp + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{assert_close, Tensor};

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        assert_eq!(a.matmul(&Tensor::eye(4)).data(), a.data());
        assert_eq!(Tensor::eye(3).matmul(&a).data(), a.data());
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0], &[2, 3]);
        let b = Tensor::from_vec(vec![3.0, 1.0, 2.0, 1.0, 1.0, 0.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[5.0, 1.0, 4.0, 2.0]);
    }

    #[test]
    fn matmul_blocked_matches_naive_reference() {
        // Inner dims straddling the 4-way unroll boundary (k = 3, 4, 5, 8, 9)
        // against a textbook triple loop.
        for &(m, k, n) in &[(3, 3, 2), (2, 4, 5), (4, 5, 3), (3, 8, 4), (5, 9, 7)] {
            let a = Tensor::from_vec(
                (0..m * k).map(|x| (x as f32 * 0.37).sin()).collect(),
                &[m, k],
            );
            let b = Tensor::from_vec(
                (0..k * n).map(|x| (x as f32 * 0.21).cos()).collect(),
                &[k, n],
            );
            let fast = a.matmul(&b);
            let mut naive = vec![0.0f32; m * n];
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0;
                    for p in 0..k {
                        acc += a.data()[i * k + p] * b.data()[p * n + j];
                    }
                    naive[i * n + j] = acc;
                }
            }
            assert_close(fast.data(), &naive, 1e-5);
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32 - 2.0).collect(), &[3, 2]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32 * 0.5).collect(), &[3, 4]);
        let via_t = a.transpose().matmul(&b);
        let direct = a.matmul_tn(&b);
        assert_close(direct.data(), via_t.data(), 1e-6);
    }

    #[test]
    fn matmul_tn_blocked_k_above_unroll() {
        // k = 6 exercises both the 4-way block and the remainder rows.
        let a = Tensor::from_vec((0..18).map(|x| (x as f32).sin()).collect(), &[6, 3]);
        let b = Tensor::from_vec((0..24).map(|x| (x as f32).cos()).collect(), &[6, 4]);
        let via_t = a.transpose().matmul(&b);
        let direct = a.matmul_tn(&b);
        assert_close(direct.data(), via_t.data(), 1e-5);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|x| (x as f32).sin()).collect(), &[4, 3]);
        let via_t = a.matmul(&b.transpose());
        let direct = a.matmul_nt(&b);
        assert_close(direct.data(), via_t.data(), 1e-6);
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = Tensor::from_vec((0..24).map(|x| x as f32 * 0.1).collect(), &[2, 3, 4]);
        let b = Tensor::from_vec(
            (0..40).map(|x| (x as f32 * 0.2).cos()).collect(),
            &[2, 4, 5],
        );
        let c = a.bmm(&b);
        assert_eq!(c.dims(), &[2, 3, 5]);
        for bi in 0..2 {
            let a2 = Tensor::from_vec(a.data()[bi * 12..(bi + 1) * 12].to_vec(), &[3, 4]);
            let b2 = Tensor::from_vec(b.data()[bi * 20..(bi + 1) * 20].to_vec(), &[4, 5]);
            let expect = a2.matmul(&b2);
            assert_close(&c.data()[bi * 15..(bi + 1) * 15], expect.data(), 1e-5);
        }
    }

    #[test]
    fn bmm_nt_matches_transpose_composition() {
        let a = Tensor::from_vec((0..24).map(|x| x as f32 * 0.3).collect(), &[2, 3, 4]);
        let b = Tensor::from_vec((0..40).map(|x| x as f32 * -0.1).collect(), &[2, 5, 4]);
        let direct = a.bmm_nt(&b);
        let via_t = a.bmm(&b.transpose12());
        assert_close(direct.data(), via_t.data(), 1e-5);
    }

    #[test]
    fn bmm_tn_matches_transpose_composition() {
        let a = Tensor::from_vec((0..24).map(|x| x as f32 * 0.3 - 1.0).collect(), &[2, 4, 3]);
        let b = Tensor::from_vec((0..40).map(|x| x as f32 * 0.05).collect(), &[2, 4, 5]);
        let direct = a.bmm_tn(&b);
        let via_t = a.transpose12().bmm(&b);
        assert_close(direct.data(), via_t.data(), 1e-5);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_panics_on_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        a.matmul(&b);
    }
}
