//! Matrix multiplication kernels.
//!
//! The 2-D kernel uses the cache-friendly `ikj` loop order with slice
//! iteration in the inner loop so the compiler can elide bounds checks and
//! vectorize. The batched kernel applies the 2-D kernel per batch element
//! and optionally fans batches out across threads (see [`crate::par`]).

use crate::par;
use crate::Tensor;

impl Tensor {
    /// 2-D matrix product: `(M, K) · (K, N) → (M, N)`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rank(),
            2,
            "matmul lhs must be rank 2, got {}",
            self.rank()
        );
        assert_eq!(
            other.rank(),
            2,
            "matmul rhs must be rank 2, got {}",
            other.rank()
        );
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul inner dims differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        matmul_into(self.data(), other.data(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// 2-D product with the left operand transposed: `Aᵀ · B`, where
    /// `A: (K, M)`, `B: (K, N)`, producing `(M, N)`.
    ///
    /// Equivalent to `self.transpose().matmul(other)` without materializing
    /// the transpose.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_tn lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_tn rhs must be rank 2");
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_tn inner dims differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        // out[i][j] = Σ_p A[p][i] * B[p][j]: accumulate row p of B scaled by A[p][i].
        for p in 0..k {
            let arow = &self.data()[p * m..(p + 1) * m];
            let brow = &other.data()[p * n..(p + 1) * n];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += a * b;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// 2-D product with the right operand transposed: `A · Bᵀ`, where
    /// `A: (M, K)`, `B: (N, K)`, producing `(M, N)`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_nt lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_nt rhs must be rank 2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_nt inner dims differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &self.data()[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &other.data()[j * k..(j + 1) * k];
                *o = dot(arow, brow);
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Batched 3-D matrix product: `(B, M, K) · (B, K, N) → (B, M, N)`.
    ///
    /// Batches are processed in parallel when the global parallelism level
    /// (see [`par::set_threads`]) is greater than one.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rank(),
            3,
            "bmm lhs must be rank 3, got {}",
            self.rank()
        );
        assert_eq!(
            other.rank(),
            3,
            "bmm rhs must be rank 3, got {}",
            other.rank()
        );
        let (b, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, k2, n) = (other.dims()[0], other.dims()[1], other.dims()[2]);
        assert_eq!(b, b2, "bmm batch dims differ: {b} vs {b2}");
        assert_eq!(k, k2, "bmm inner dims differ: {k} vs {k2}");
        let mut out = vec![0.0f32; b * m * n];
        {
            let lhs = self.data();
            let rhs = other.data();
            par::for_each_chunk(&mut out, m * n, |bi, chunk| {
                let a = &lhs[bi * m * k..(bi + 1) * m * k];
                let bdat = &rhs[bi * k * n..(bi + 1) * k * n];
                matmul_into(a, bdat, chunk, m, k, n);
            });
        }
        Tensor::from_vec(out, &[b, m, n])
    }

    /// Batched product with the right operand transposed:
    /// `(B, M, K) · (B, N, K)ᵀ → (B, M, N)`.
    ///
    /// This is the attention-score kernel `Z · Eᵀ` (paper Eq. 7) without
    /// materializing the transpose.
    pub fn bmm_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm_nt lhs must be rank 3");
        assert_eq!(other.rank(), 3, "bmm_nt rhs must be rank 3");
        let (b, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, n, k2) = (other.dims()[0], other.dims()[1], other.dims()[2]);
        assert_eq!(b, b2, "bmm_nt batch dims differ: {b} vs {b2}");
        assert_eq!(k, k2, "bmm_nt inner dims differ: {k} vs {k2}");
        let mut out = vec![0.0f32; b * m * n];
        {
            let lhs = self.data();
            let rhs = other.data();
            par::for_each_chunk(&mut out, m * n, |bi, chunk| {
                let a = &lhs[bi * m * k..(bi + 1) * m * k];
                let bdat = &rhs[bi * n * k..(bi + 1) * n * k];
                for i in 0..m {
                    let arow = &a[i * k..(i + 1) * k];
                    let orow = &mut chunk[i * n..(i + 1) * n];
                    for (j, o) in orow.iter_mut().enumerate() {
                        *o = dot(arow, &bdat[j * k..(j + 1) * k]);
                    }
                }
            });
        }
        Tensor::from_vec(out, &[b, m, n])
    }

    /// Batched product with the left operand transposed:
    /// `(B, K, M)ᵀ · (B, K, N) → (B, M, N)`.
    pub fn bmm_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm_tn lhs must be rank 3");
        assert_eq!(other.rank(), 3, "bmm_tn rhs must be rank 3");
        let (b, k, m) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, k2, n) = (other.dims()[0], other.dims()[1], other.dims()[2]);
        assert_eq!(b, b2, "bmm_tn batch dims differ: {b} vs {b2}");
        assert_eq!(k, k2, "bmm_tn inner dims differ: {k} vs {k2}");
        let mut out = vec![0.0f32; b * m * n];
        {
            let lhs = self.data();
            let rhs = other.data();
            par::for_each_chunk(&mut out, m * n, |bi, chunk| {
                let a = &lhs[bi * k * m..(bi + 1) * k * m];
                let bdat = &rhs[bi * k * n..(bi + 1) * k * n];
                for p in 0..k {
                    let arow = &a[p * m..(p + 1) * m];
                    let brow = &bdat[p * n..(p + 1) * n];
                    for (i, &av) in arow.iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        let orow = &mut chunk[i * n..(i + 1) * n];
                        for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                            *o += av * bv;
                        }
                    }
                }
            });
        }
        Tensor::from_vec(out, &[b, m, n])
    }
}

/// Dot product of two equal-length slices.
#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// `out += A · B` into a zeroed buffer, `A: (m, k)`, `B: (k, n)`.
///
/// `ikj` order: the inner loop walks rows of `B` and `out` contiguously.
fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{assert_close, Tensor};

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        assert_eq!(a.matmul(&Tensor::eye(4)).data(), a.data());
        assert_eq!(Tensor::eye(3).matmul(&a).data(), a.data());
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0], &[2, 3]);
        let b = Tensor::from_vec(vec![3.0, 1.0, 2.0, 1.0, 1.0, 0.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[5.0, 1.0, 4.0, 2.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32 - 2.0).collect(), &[3, 2]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32 * 0.5).collect(), &[3, 4]);
        let via_t = a.transpose().matmul(&b);
        let direct = a.matmul_tn(&b);
        assert_close(direct.data(), via_t.data(), 1e-6);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|x| (x as f32).sin()).collect(), &[4, 3]);
        let via_t = a.matmul(&b.transpose());
        let direct = a.matmul_nt(&b);
        assert_close(direct.data(), via_t.data(), 1e-6);
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = Tensor::from_vec((0..24).map(|x| x as f32 * 0.1).collect(), &[2, 3, 4]);
        let b = Tensor::from_vec(
            (0..40).map(|x| (x as f32 * 0.2).cos()).collect(),
            &[2, 4, 5],
        );
        let c = a.bmm(&b);
        assert_eq!(c.dims(), &[2, 3, 5]);
        for bi in 0..2 {
            let a2 = Tensor::from_vec(a.data()[bi * 12..(bi + 1) * 12].to_vec(), &[3, 4]);
            let b2 = Tensor::from_vec(b.data()[bi * 20..(bi + 1) * 20].to_vec(), &[4, 5]);
            let expect = a2.matmul(&b2);
            assert_close(&c.data()[bi * 15..(bi + 1) * 15], expect.data(), 1e-5);
        }
    }

    #[test]
    fn bmm_nt_matches_transpose_composition() {
        let a = Tensor::from_vec((0..24).map(|x| x as f32 * 0.3).collect(), &[2, 3, 4]);
        let b = Tensor::from_vec((0..40).map(|x| x as f32 * -0.1).collect(), &[2, 5, 4]);
        let direct = a.bmm_nt(&b);
        let via_t = a.bmm(&b.transpose12());
        assert_close(direct.data(), via_t.data(), 1e-5);
    }

    #[test]
    fn bmm_tn_matches_transpose_composition() {
        let a = Tensor::from_vec((0..24).map(|x| x as f32 * 0.3 - 1.0).collect(), &[2, 4, 3]);
        let b = Tensor::from_vec((0..40).map(|x| x as f32 * 0.05).collect(), &[2, 4, 5]);
        let direct = a.bmm_tn(&b);
        let via_t = a.transpose12().bmm(&b);
        assert_close(direct.data(), via_t.data(), 1e-5);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_panics_on_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        a.matmul(&b);
    }
}
