//! Thread-local scratch-buffer pool for tensor storage reuse.
//!
//! The training loop allocates and frees hundreds of intermediate tensors
//! per batch (forward activations, gradients, optimizer temporaries). With
//! a plain `Vec` per tensor that is hundreds of allocator round-trips per
//! step. This module keeps a small per-thread free list of `Vec<f32>`
//! buffers: [`take`] hands out a recycled buffer when one with enough
//! capacity is available, and [`recycle`] returns a buffer to the pool
//! instead of freeing it.
//!
//! Recycling is wired into the autograd tape (`Tape::clear`/`Drop` recycle
//! every node) and [`Tensor::recycle`](crate::Tensor::recycle), so a steady
//! training loop reaches a fixed point where every step runs allocation-free
//! out of the pool.
//!
//! The pool is thread-local: no locks, and kernels running on pool workers
//! recycle into their own lists. Buffers above [`MAX_POOLED_LEN`] elements,
//! lists beyond [`MAX_POOLED_BUFFERS`] entries, and anything that would
//! push a thread's retained total past [`MAX_POOLED_BYTES`] are released
//! to the allocator, so per-thread footprint stays hard-bounded even on
//! long-lived pool workers.

use std::cell::RefCell;

/// Maximum buffers kept per thread.
pub const MAX_POOLED_BUFFERS: usize = 64;

/// Maximum capacity (elements) of a pooled buffer — 4 Mi elements, 16 MiB.
pub const MAX_POOLED_LEN: usize = 1 << 22;

/// Maximum total bytes retained per thread (64 MiB). Worker threads live
/// for the whole process, so the per-thread bound is the process bound
/// times the thread count.
pub const MAX_POOLED_BYTES: usize = 64 << 20;

#[derive(Default)]
struct ScratchPool {
    bufs: Vec<Vec<f32>>,
    /// Total capacity bytes currently retained in `bufs`.
    bytes: usize,
}

thread_local! {
    static POOL: RefCell<ScratchPool> = RefCell::new(ScratchPool::default());
}

impl ScratchPool {
    /// Removes and returns the smallest pooled buffer with capacity at
    /// least `len` (smallest-fit keeps big buffers available for big
    /// requests), updating the retained-bytes accounting. The buffer's
    /// length is whatever its previous user left.
    fn pop_best_fit(&mut self, len: usize) -> Option<Vec<f32>> {
        let mut best: Option<(usize, usize)> = None;
        for (i, buf) in self.bufs.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= len && best.is_none_or(|(_, best_cap)| cap < best_cap) {
                best = Some((i, cap));
                if cap == len {
                    break;
                }
            }
        }
        best.map(|(i, _)| {
            let buf = self.bufs.swap_remove(i);
            self.bytes -= buf.capacity() * size_of::<f32>();
            buf
        })
    }
}

/// Takes an **empty** buffer with capacity at least `len`.
///
/// Prefers the smallest pooled buffer that fits to keep big buffers
/// available for big requests. Falls back to a fresh allocation when the
/// pool has no fit.
pub fn take(len: usize) -> Vec<f32> {
    POOL.with(|pool| match pool.borrow_mut().pop_best_fit(len) {
        Some(mut buf) => {
            buf.clear();
            buf
        }
        None => Vec::with_capacity(len),
    })
}

/// Takes a buffer of exactly `len` zeros.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    let mut buf = take(len);
    buf.resize(len, 0.0);
    buf
}

/// Takes a buffer of exactly `len` elements with **unspecified contents**
/// (stale values from the buffer's previous use, zeros where the pool has
/// to grow it).
///
/// For buffers the caller fully overwrites before reading — packed GEMM
/// panels, store-mode GEMM outputs — this skips [`take_zeroed`]'s memset,
/// which on the convolution hot path re-zeroes megabytes per training or
/// serving step only to overwrite every byte again. Buffers are recycled
/// with their length intact, so at steady state the common case is a pure
/// truncate with no writes at all.
pub fn take_full(len: usize) -> Vec<f32> {
    POOL.with(|pool| match pool.borrow_mut().pop_best_fit(len) {
        Some(mut buf) => {
            if buf.len() >= len {
                buf.truncate(len);
            } else {
                // Only the gap between the buffer's previous length and
                // `len` needs initializing; bytes past a Vec's length may
                // never have been written, so they cannot be exposed by
                // truncation tricks.
                buf.resize(len, 0.0);
            }
            buf
        }
        None => vec![0.0; len],
    })
}

/// Takes a buffer holding a copy of `src`.
pub fn take_copied(src: &[f32]) -> Vec<f32> {
    let mut buf = take(src.len());
    buf.extend_from_slice(src);
    buf
}

/// Returns a buffer to this thread's pool (or frees it when the pool is
/// full, the retained-bytes budget is spent, or the buffer is outside the
/// pooled size range).
pub fn recycle(buf: Vec<f32>) {
    let bytes = buf.capacity() * size_of::<f32>();
    if buf.capacity() == 0 || buf.capacity() > MAX_POOLED_LEN {
        return;
    }
    POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.bufs.len() < MAX_POOLED_BUFFERS && pool.bytes + bytes <= MAX_POOLED_BYTES {
            pool.bytes += bytes;
            pool.bufs.push(buf);
        }
    });
}

/// Number of buffers currently pooled on this thread (diagnostics/tests).
pub fn pooled_buffers() -> usize {
    POOL.with(|pool| pool.borrow().bufs.len())
}

/// Total capacity bytes currently retained on this thread
/// (diagnostics/tests).
pub fn pooled_bytes() -> usize {
    POOL.with(|pool| pool.borrow().bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_buffer_is_reused() {
        // Use an odd length unlikely to collide with other tests sharing
        // the thread-local pool.
        let mut buf = take(12345);
        buf.resize(12345, 7.0);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        recycle(buf);
        let again = take(12345);
        assert_eq!(again.capacity(), cap);
        assert_eq!(again.as_ptr(), ptr, "pool did not hand back the buffer");
        assert!(again.is_empty(), "take() must hand out an empty buffer");
    }

    #[test]
    fn take_zeroed_is_clean_after_recycling_garbage() {
        let mut buf = take(513);
        buf.resize(513, f32::NAN);
        recycle(buf);
        let z = take_zeroed(513);
        assert_eq!(z.len(), 513);
        assert!(z.iter().all(|&v| v == 0.0), "recycled garbage leaked");
    }

    #[test]
    fn take_full_reuses_without_clearing() {
        // Dedicated thread: the assertions must not race sibling tests
        // sharing the harness thread's pool.
        std::thread::spawn(|| {
            let mut buf = take(777);
            buf.resize(777, 3.5);
            let ptr = buf.as_ptr();
            recycle(buf);
            let full = take_full(777);
            assert_eq!(full.len(), 777);
            assert_eq!(full.as_ptr(), ptr, "pool did not hand back the buffer");
            // Contents are unspecified but must be initialized memory; here
            // the recycled values survive untouched.
            assert!(full.iter().all(|&v| v == 3.5));
            recycle(full);

            // Growing within capacity zero-fills only the gap.
            let mut short = Vec::with_capacity(2048);
            short.extend_from_slice(&[9.0; 8]);
            recycle(short);
            let grown = take_full(1024);
            assert_eq!(grown.len(), 1024);
            assert_eq!(&grown[..8], &[9.0; 8]);
            assert!(grown[8..].iter().all(|&v| v == 0.0));
        })
        .join()
        .expect("take_full thread panicked");
    }

    #[test]
    fn take_copied_matches_source() {
        let src = [1.0f32, 2.0, 3.0];
        let c = take_copied(&src);
        assert_eq!(c.as_slice(), &src);
        recycle(c);
    }

    #[test]
    fn oversized_buffers_are_not_pooled() {
        let before = pooled_buffers();
        recycle(Vec::with_capacity(MAX_POOLED_LEN + 1));
        assert_eq!(pooled_buffers(), before);
        recycle(Vec::new());
        assert_eq!(pooled_buffers(), before);
    }

    #[test]
    fn retained_bytes_stay_under_budget() {
        // Run on a dedicated thread: the budget assertion must not see
        // buffers recycled by sibling tests on the harness thread.
        std::thread::spawn(|| {
            // Recycling more than the byte budget keeps only what fits.
            let buf_len = MAX_POOLED_LEN / 2;
            let per_buf_bytes = buf_len * size_of::<f32>();
            for _ in 0..(MAX_POOLED_BYTES / per_buf_bytes + 4) {
                recycle(Vec::with_capacity(buf_len));
            }
            assert!(
                pooled_bytes() <= MAX_POOLED_BYTES,
                "pool retained {} bytes, budget {}",
                pooled_bytes(),
                MAX_POOLED_BYTES
            );
            // Draining returns the accounting to zero.
            while pooled_buffers() > 0 {
                drop(take(buf_len));
            }
            assert_eq!(pooled_bytes(), 0);
        })
        .join()
        .expect("budget thread panicked");
    }
}
