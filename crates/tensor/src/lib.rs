//! Dense `f32` tensor algebra for the CAE-Ensemble reproduction.
//!
//! This crate is the numeric substrate underneath the autograd engine and the
//! neural models. It provides a row-major, contiguous [`Tensor`] plus the
//! kernels the paper's models need:
//!
//! * elementwise arithmetic and activations,
//! * 2-D and batched 3-D matrix multiplication (register-blocked kernels),
//! * 1-D convolution with *same* and *causal* padding ([`Padding`]),
//!   with a fused multi-tap inner loop,
//! * reductions and axis utilities,
//! * seeded random initialization,
//! * optional thread-level parallelism over batches via a persistent
//!   worker pool ([`par`]),
//! * a thread-local scratch-buffer pool backing tensor storage
//!   ([`scratch`]).
//!
//! # Kernel layering
//!
//! Compute is organized in three layers:
//!
//! 1. **Dispatch** ([`simd`]): detects AVX2+FMA once at runtime (cached
//!    in an atomic) and exposes the `CAE_TENSOR_FORCE_SCALAR` /
//!    [`simd::set_force_scalar`] overrides. It also hosts the vectorized
//!    elementwise kernels (activations and their gradients, reductions,
//!    softmax passes, axpys) next to their portable scalar twins.
//! 2. **Packed GEMM core** (`gemm`, x86_64 only): every dense
//!    contraction — `matmul`/`matmul_tn`/`matmul_nt`, the three `bmm`
//!    variants, and the implicit-im2col convolution forward/input-grad/
//!    kernel-grad — is expressed as `C += A·B` over packed operand
//!    panels and executed by one 6×16 AVX2+FMA register-tile
//!    microkernel. Panels live in pooled scratch; row blocks fan out
//!    over the worker pool.
//! 3. **Portable kernels** (`matmul`, `conv`): the unrolled scalar
//!    loops, used when AVX2 is unavailable or the scalar path is forced,
//!    and for contractions too small to amortize packing.
//!
//! Within a dispatch path results are bit-exact across thread counts;
//! across paths they agree to ≤1e-4 relative tolerance (see
//! `tests/determinism.rs` and `tests/properties.rs`).
//!
//! Shape mismatches are programming errors and panic with a descriptive
//! message, mirroring the convention of mainstream array libraries.
//!
//! # Example
//!
//! ```
//! use cae_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

// Every unsafe operation inside an `unsafe fn` must sit in its own
// `unsafe` block with a SAFETY comment — keeps the per-operation
// invariants of the SIMD kernels and the worker pool auditable (and
// machine-checked by `cae-lint` rule U1).
#![deny(unsafe_op_in_unsafe_fn)]

mod activate;
mod conv;
#[cfg(target_arch = "x86_64")]
mod gemm;
mod init;
mod matmul;
pub mod obs;
pub mod par;
mod reduce;
pub mod scratch;
mod shape;
pub mod simd;
mod tensor;

pub use conv::Padding;
pub use reduce::sq_dist;
pub use shape::Shape;
pub use tensor::Tensor;

/// Absolute tolerance used by the test-suites of the numeric crates.
pub const TEST_EPS: f32 = 1e-4;

/// Asserts two slices are elementwise close within `tol`.
///
/// Intended for tests across the workspace; panics with the first
/// offending index on failure.
pub fn assert_close(a: &[f32], b: &[f32], tol: f32) {
    assert_eq!(
        a.len(),
        b.len(),
        "length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            (x - y).abs() <= tol,
            "values differ at index {i}: {x} vs {y} (tol {tol})"
        );
    }
}
