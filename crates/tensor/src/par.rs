//! Thread-level batch parallelism over a **persistent worker pool**.
//!
//! The paper's efficiency claim for convolutional autoencoders rests on the
//! fact that convolutions parallelize across time steps and batch elements
//! while RNN steps cannot. On CPU we realize that parallelism with a
//! process-wide pool of long-lived worker threads: workers are spawned
//! lazily on the first parallel kernel call and then parked on a condition
//! variable between jobs, so a training epoch pays the thread-spawn cost
//! **zero** times instead of once per kernel invocation (the previous
//! design spawned and joined scoped threads inside every call).
//!
//! Dispatch model:
//!
//! * A job is a count of independent tasks plus a closure `f(task_index)`.
//!   The submitting thread publishes the job, wakes the workers, and then
//!   participates in the work itself, so a pool with `n` configured threads
//!   uses `n - 1` workers plus the caller.
//! * Tasks are claimed with an atomic counter, executed, and counted; the
//!   submitter returns once every task has finished. Worker panics are
//!   caught, counted as completion, and re-raised on the submitting thread.
//! * Nested parallel calls (a task that itself calls into [`for_each_chunk`]
//!   or [`map_indexed`]) run sequentially on the calling worker — the outer
//!   job already owns the pool, and coarse-grained parallelism wins.
//!
//! The thread count is a process-wide setting ([`set_threads`]); the default
//! of 1 keeps all kernels deterministic and overhead-free for the small
//! tensors used in tests. Benchmarks and the training harness raise it via
//! [`use_all_cores`]. Splitting is over contiguous, disjoint output spans
//! computed identically at every thread count, so threaded results are
//! **bit-exact** with the sequential path.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

static THREADS: AtomicUsize = AtomicUsize::new(1);

/// Hard cap on configured threads (and thus spawned workers).
const MAX_THREADS: usize = 256;

/// Sets the number of worker threads used by batched kernels.
///
/// Values are clamped to `1..=256`. Thread count 1 means fully sequential
/// execution (the default). Raising the count never re-spawns existing
/// workers; lowering it simply leaves the surplus workers parked.
pub fn set_threads(n: usize) {
    // Release/Acquire pairing with `threads()`: a kernel call that
    // observes the new count must also observe everything the caller
    // wrote before reconfiguring (e.g. a test arranging buffers before
    // raising the count on a pool another thread dispatches to).
    THREADS.store(n.clamp(1, MAX_THREADS), Ordering::Release);
}

/// Current worker-thread setting.
pub fn threads() -> usize {
    THREADS.load(Ordering::Acquire)
}

/// Convenience: set threads to the machine's available parallelism.
pub fn use_all_cores() {
    let n = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    set_threads(n);
}

/// Minimum output size (elements) before a kernel fans out to threads.
///
/// Pool dispatch costs a couple of condvar wakes (microseconds, not the
/// tens of microseconds a thread spawn used to cost), so the threshold is
/// sized such that the arithmetic under it dominates the dispatch.
pub const PAR_THRESHOLD: usize = 1 << 12;

/// Total worker threads spawned by the pool over the process lifetime.
///
/// This is the probe used by tests and `perf_report` to verify that
/// workers are spawned **once per process**, not once per kernel call: the
/// value is bounded by `threads() - 1` and stays constant across any
/// number of kernel invocations.
pub fn pool_threads_spawned() -> usize {
    pool().spawned.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Pool internals
// ---------------------------------------------------------------------

/// Lifetime- and type-erased pointer to the job closure: a thin data
/// pointer plus a monomorphized trampoline that casts it back. The
/// submitter guarantees the referent outlives the job (it blocks until
/// every task has finished), so handing the pointer to workers is sound.
/// Erasing through a raw pointer (rather than a transmuted `&'static`)
/// keeps the lifetime laundering visible: every use goes through
/// [`TaskPtr::call`], whose safety contract states the liveness
/// requirement.
#[derive(Clone, Copy)]
struct TaskPtr {
    data: *const (),
    trampoline: unsafe fn(*const (), usize),
}

// SAFETY: the pointee is `Sync` (the `F: Sync` bound on `erase` permits
// concurrent `&`-calls from any thread) and the submitting thread blocks
// in `run_tasks` until every task has finished, so no thread can observe
// the pointer after the referent's borrow ends.
unsafe impl Send for TaskPtr {}
// SAFETY: same argument — sharing the pointer only enables shared calls
// on a `Sync` closure whose liveness the submitter enforces by blocking.
unsafe impl Sync for TaskPtr {}

impl TaskPtr {
    /// Erases the closure's type and lifetime. Callers must not run the
    /// task after the original borrow ends — `run_tasks` enforces this by
    /// blocking until the job's finished count reaches its total.
    fn erase<F: Fn(usize) + Sync>(f: &F) -> Self {
        /// # Safety
        ///
        /// `data` must point to a live `F` (see [`TaskPtr::call`]).
        unsafe fn trampoline<F: Fn(usize) + Sync>(data: *const (), i: usize) {
            // SAFETY: `data` came from `erase::<F>` and the caller
            // contract guarantees the referent is still alive.
            unsafe { (*data.cast::<F>())(i) }
        }
        TaskPtr {
            data: (f as *const F).cast(),
            trampoline: trampoline::<F>,
        }
    }

    /// Runs task `i` through the erased closure.
    ///
    /// # Safety
    ///
    /// The closure passed to [`TaskPtr::erase`] must still be borrowed by
    /// the submitter. This holds for every call issued while the owning
    /// [`Job`] is published: the submitter keeps the closure alive until
    /// `finished` reaches `total`, and tasks are only claimed before that.
    unsafe fn call(&self, i: usize) {
        // SAFETY: liveness is guaranteed by the caller contract above;
        // the referent is `Sync`, so concurrent shared calls are fine.
        unsafe { (self.trampoline)(self.data, i) }
    }
}

/// One published job: `total` tasks executed via `task`.
struct Job {
    task: TaskPtr,
    total: usize,
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Number of finished tasks (monotonic up to `total`).
    finished: AtomicUsize,
    /// Set when any task panicked; re-raised by the submitter.
    panicked: AtomicBool,
}

impl Job {
    /// Claims and runs tasks until none remain. Returns whether this call
    /// finished the last task of the job.
    fn run(&self) -> bool {
        let mut finished_last = false;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return finished_last;
            }
            let task = self.task;
            // SAFETY: we claimed task `i` before `finished` reached
            // `total`, so the job is still published and the submitter is
            // still blocking with the closure borrowed.
            if catch_unwind(AssertUnwindSafe(|| unsafe { task.call(i) })).is_err() {
                // Release-pairs with the submitter's Acquire load after
                // the `finished` handshake, so the panic verdict is
                // ordered independently of that handshake.
                self.panicked.store(true, Ordering::Release);
            }
            let done = self.finished.fetch_add(1, Ordering::AcqRel) + 1;
            finished_last = done == self.total;
        }
    }
}

struct PoolState {
    /// The job currently being executed, if any. A single slot: concurrent
    /// submitters queue on `done_cv` until the slot frees.
    job: Option<Arc<Job>>,
    /// Bumped on every publication so parked workers can tell a fresh job
    /// from the one they already drained.
    generation: u64,
    /// Workers spawned so far.
    workers: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Signaled when a new job is published.
    work_cv: Condvar,
    /// Signaled when a job completes (and when the job slot frees).
    done_cv: Condvar,
    /// Lifetime count of spawned worker threads (see
    /// [`pool_threads_spawned`]).
    spawned: AtomicUsize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            job: None,
            generation: 0,
            workers: 0,
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
        spawned: AtomicUsize::new(0),
    })
}

thread_local! {
    /// True while this thread is executing inside a pool job (worker
    /// threads permanently, the submitter during its participation).
    /// Nested parallel calls observe it and run sequentially.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Worker main loop: park until a fresh job generation appears, drain it,
/// signal completion if we finished the last task, repeat forever.
fn worker_loop(pool: &'static Pool) {
    IN_POOL.with(|f| f.set(true));
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut st = pool.state.lock().expect("pool lock poisoned");
            loop {
                if st.generation != seen_generation {
                    seen_generation = st.generation;
                    if let Some(job) = st.job.clone() {
                        break job;
                    }
                }
                st = pool.work_cv.wait(st).expect("pool lock poisoned");
            }
        };
        if job.run() {
            // Last task of the job: wake the submitter. Taking the lock
            // orders the notify after the submitter's check-then-wait.
            let _guard = pool.state.lock().expect("pool lock poisoned");
            pool.done_cv.notify_all();
        }
    }
}

/// Ensures at least `wanted` workers exist (capped at `MAX_THREADS - 1`).
fn ensure_workers(pool: &'static Pool, wanted: usize) {
    let wanted = wanted.min(MAX_THREADS - 1);
    let mut st = pool.state.lock().expect("pool lock poisoned");
    while st.workers < wanted {
        let idx = st.workers;
        let spawn = std::thread::Builder::new()
            .name(format!("cae-par-{idx}"))
            .spawn(move || worker_loop(pool));
        match spawn {
            Ok(_) => {
                st.workers += 1;
                pool.spawned.fetch_add(1, Ordering::Relaxed);
            }
            // Out of threads: run with what we have — the submitter
            // participates, so the job still completes.
            Err(_) => break,
        }
    }
}

/// Executes `total` tasks on the pool with up to `workers` threads
/// (including the calling thread), blocking until all have finished.
///
/// Falls back to a plain sequential loop when the pool would not help:
/// one task, one configured thread, or a nested call from inside a job.
fn run_tasks<F: Fn(usize) + Sync>(total: usize, workers: usize, f: &F) {
    if total == 0 {
        return;
    }
    if total == 1 || workers <= 1 || IN_POOL.with(std::cell::Cell::get) {
        for i in 0..total {
            f(i);
        }
        return;
    }

    let pool = pool();
    ensure_workers(pool, workers - 1);
    crate::obs::set_pool_queue_depth(total);
    let job = Arc::new(Job {
        task: TaskPtr::erase(f),
        total,
        next: AtomicUsize::new(0),
        finished: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
    });

    {
        let mut st = pool.state.lock().expect("pool lock poisoned");
        // Single job slot: wait for any in-flight job of another submitter.
        while st.job.is_some() {
            st = pool.done_cv.wait(st).expect("pool lock poisoned");
        }
        st.job = Some(job.clone());
        st.generation += 1;
    }
    pool.work_cv.notify_all();

    // Participate: the submitter is one of the `workers` threads. (No
    // completion signal needed from this side — the wait below re-checks
    // the finished count under the lock.)
    IN_POOL.with(|g| g.set(true));
    job.run();
    IN_POOL.with(|g| g.set(false));

    {
        let mut st = pool.state.lock().expect("pool lock poisoned");
        while job.finished.load(Ordering::Acquire) < total {
            st = pool.done_cv.wait(st).expect("pool lock poisoned");
        }
        st.job = None;
    }
    // Free the job slot for queued submitters.
    pool.done_cv.notify_all();
    crate::obs::set_pool_queue_depth(0);

    if job.panicked.load(Ordering::Acquire) {
        panic!("cae-tensor pool worker panicked");
    }
}

/// Raw mutable base pointer that may cross the closure boundary; spans
/// written through it are disjoint per task. (The accessor method forces
/// closures to capture the whole wrapper, not the raw-pointer field.)
/// Shared with the packed GEMM driver, which fans row blocks out the
/// same way.
pub(crate) struct SyncMutPtr<T>(pub(crate) *mut T);
// SAFETY: every user writes only a task-private, disjoint index range
// through the pointer, and the allocation outlives the job because the
// submitter blocks until all tasks finish — so shared access never
// aliases a live mutable write.
unsafe impl<T> Sync for SyncMutPtr<T> {}
// SAFETY: same disjointness/liveness argument; moving the wrapper across
// threads transfers no ownership of the pointee.
unsafe impl<T> Send for SyncMutPtr<T> {}

impl<T> SyncMutPtr<T> {
    #[inline]
    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

// ---------------------------------------------------------------------
// Public kernels
// ---------------------------------------------------------------------

/// Runs `f(batch_index, chunk)` for every `chunk_len`-sized chunk of `out`,
/// in parallel when more than one thread is configured **and** the total
/// work exceeds [`PAR_THRESHOLD`].
///
/// `out.len()` must be a multiple of `chunk_len`. The closure receives
/// disjoint output chunks, so no synchronization is needed. Chunks are
/// grouped into one contiguous span per worker; every span is computed
/// exactly as the sequential loop would, so results are bit-exact across
/// thread counts.
pub fn for_each_chunk<F>(out: &mut [f32], chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if chunk_len == 0 || out.is_empty() {
        return;
    }
    assert_eq!(
        out.len() % chunk_len,
        0,
        "output length {} is not a multiple of chunk length {chunk_len}",
        out.len()
    );
    let batches = out.len() / chunk_len;
    let workers = threads().min(batches);
    if workers <= 1 || out.len() < PAR_THRESHOLD {
        for (bi, chunk) in out.chunks_exact_mut(chunk_len).enumerate() {
            f(bi, chunk);
        }
        return;
    }
    // One contiguous span of chunks per worker.
    let per = batches.div_ceil(workers);
    let spans = batches.div_ceil(per);
    let out_len = out.len();
    let base = SyncMutPtr(out.as_mut_ptr());
    run_tasks(spans, workers, &|s| {
        let lo = s * per;
        let hi = (lo + per).min(batches);
        debug_assert!(hi <= batches && (hi - lo) * chunk_len <= out_len);
        for bi in lo..hi {
            // SAFETY: `bi * chunk_len + chunk_len <= out.len()` (checked
            // by the multiple-of assert above and `hi <= batches`), spans
            // never overlap across tasks, and the submitter blocks until
            // every task is done, so `out` outlives every write.
            let chunk = unsafe {
                std::slice::from_raw_parts_mut(base.get().add(bi * chunk_len), chunk_len)
            };
            f(bi, chunk);
        }
    });
}

/// Runs `f(i)` for every `i in 0..n` on the pool, collecting nothing.
///
/// This is the fan-out primitive of the packed GEMM driver: tasks are
/// claimed dynamically by an atomic counter, so callers whose tasks write
/// disjoint output regions (e.g. fixed-size row blocks) need no further
/// coordination. Falls back to a sequential loop for one task, one
/// configured thread, or a nested call from inside a pool job.
pub fn for_each_index<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    run_tasks(n, threads().min(n), &f);
}

/// Runs `f(i)` for every `i in 0..n` in parallel, collecting results in
/// order. Equivalent to [`map_indexed_min`] with a minimum of one task per
/// worker — use this for coarse-grained work where every task is heavy
/// (training independent ensemble members, growing isolation-forest trees).
pub fn map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_indexed_min(n, 1, f)
}

/// Runs `f(i)` for every `i in 0..n` in parallel, fanning out only when
/// every worker gets at least `min_per_worker` items.
///
/// The minimum is the granularity guard for cheap per-item workloads
/// (e.g. per-point neighbor queries): with `n = 300` and
/// `min_per_worker = 128` at most two workers engage, and below 256 items
/// the loop stays sequential instead of waking the whole pool.
pub fn map_indexed_min<T, F>(n: usize, min_per_worker: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let by_granularity = n / min_per_worker.max(1);
    let workers = threads().min(by_granularity.max(1)).min(n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let per = n.div_ceil(workers);
    let spans = n.div_ceil(per);
    let base = SyncMutPtr(slots.as_mut_ptr());
    run_tasks(spans, workers, &|s| {
        let lo = s * per;
        let hi = (lo + per).min(n);
        debug_assert!(hi <= n, "span [{lo}, {hi}) exceeds slot count {n}");
        for i in lo..hi {
            // SAFETY: `i < n == slots.len()` and spans are disjoint per
            // task, so each slot is written by exactly one thread while
            // the submitter keeps `slots` alive by blocking.
            unsafe { *base.get().add(i) = Some(f(i)) };
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("worker did not fill slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The thread count and spawn counter are process-global; tests that
    /// touch them must not interleave under the parallel test harness.
    fn lock() -> MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(()))
            .lock()
            .expect("par test gate poisoned")
    }

    #[test]
    fn sequential_chunks_cover_all() {
        let _gate = lock();
        set_threads(1);
        let mut out = vec![0.0f32; 12];
        for_each_chunk(&mut out, 3, |bi, chunk| {
            for c in chunk.iter_mut() {
                *c = bi as f32;
            }
        });
        assert_eq!(
            out,
            vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0]
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let _gate = lock();
        let work = |bi: usize, chunk: &mut [f32]| {
            for (j, c) in chunk.iter_mut().enumerate() {
                *c = (bi * 31 + j) as f32;
            }
        };
        // Large enough to clear PAR_THRESHOLD so the threaded path runs.
        let n = 16 * PAR_THRESHOLD;
        set_threads(1);
        let mut seq = vec![0.0f32; n];
        for_each_chunk(&mut seq, n / 16, work);
        set_threads(4);
        let mut par = vec![0.0f32; n];
        for_each_chunk(&mut par, n / 16, work);
        set_threads(1);
        assert_eq!(seq, par);
    }

    #[test]
    fn map_indexed_in_order() {
        let _gate = lock();
        set_threads(3);
        let v = map_indexed(10, |i| i * i);
        set_threads(1);
        assert_eq!(v, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
    }

    #[test]
    fn map_indexed_min_guards_granularity() {
        let _gate = lock();
        set_threads(4);
        // 10 items at 128-per-worker minimum: stays sequential, still correct.
        let v = map_indexed_min(10, 128, |i| i + 1);
        assert_eq!(v, (1..=10).collect::<Vec<_>>());
        // Large n fans out and matches the sequential result.
        let big = map_indexed_min(1000, 128, |i| i * 3);
        set_threads(1);
        assert_eq!(big, (0..1000).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_work_is_ok() {
        let _gate = lock();
        let mut out: Vec<f32> = vec![];
        for_each_chunk(&mut out, 4, |_, _| panic!("must not be called"));
        let v: Vec<u8> = map_indexed(0, |_| 1u8);
        assert!(v.is_empty());
    }

    #[test]
    fn workers_are_spawned_once_per_process() {
        let _gate = lock();
        set_threads(4);
        let run = || {
            let mut out = vec![0.0f32; 4 * PAR_THRESHOLD];
            for_each_chunk(&mut out, PAR_THRESHOLD / 4, |bi, c| {
                c[0] = bi as f32;
            });
        };
        run();
        // Sibling tests (serialized by the gate) may already have grown
        // the pool; this 4-thread run guarantees at least one worker and
        // at most 3 exist, and the count must not grow afterwards.
        let after_first = pool_threads_spawned();
        assert!(
            (1..=3).contains(&after_first),
            "expected 1..=3 workers, got {after_first}"
        );
        for _ in 0..50 {
            run();
        }
        set_threads(1);
        assert_eq!(
            pool_threads_spawned(),
            after_first,
            "pool re-spawned workers on later kernel calls"
        );
    }

    #[test]
    fn nested_calls_run_sequentially_and_complete() {
        let _gate = lock();
        set_threads(4);
        let outer: Vec<Vec<usize>> = map_indexed(8, |i| {
            // Nested call from inside a pool task: must not deadlock.
            map_indexed(16, move |j| i * 16 + j)
        });
        set_threads(1);
        for (i, inner) in outer.iter().enumerate() {
            assert_eq!(*inner, (i * 16..(i + 1) * 16).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let _gate = lock();
        set_threads(2);
        let caught = catch_unwind(|| {
            let mut out = vec![0.0f32; 2 * PAR_THRESHOLD];
            for_each_chunk(&mut out, PAR_THRESHOLD, |bi, _| {
                if bi == 1 {
                    panic!("task failure");
                }
            });
        });
        set_threads(1);
        assert!(caught.is_err(), "panic in a pool task must propagate");
    }
}
