//! Thread-level batch parallelism.
//!
//! The paper's efficiency claim for convolutional autoencoders rests on the
//! fact that convolutions parallelize across time steps and batch elements
//! while RNN steps cannot. On CPU we realize that parallelism with
//! `crossbeam` scoped threads over batch chunks.
//!
//! The thread count is a process-wide setting ([`set_threads`]); the default
//! of 1 keeps all kernels deterministic and overhead-free for the small
//! tensors used in tests. Benchmarks and the training harness raise it.

use std::sync::atomic::{AtomicUsize, Ordering};

static THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the number of worker threads used by batched kernels.
///
/// Values are clamped to `1..=256`. Thread count 1 means fully sequential
/// execution (the default).
pub fn set_threads(n: usize) {
    THREADS.store(n.clamp(1, 256), Ordering::Relaxed);
}

/// Current worker-thread setting.
pub fn threads() -> usize {
    THREADS.load(Ordering::Relaxed)
}

/// Convenience: set threads to the machine's available parallelism.
pub fn use_all_cores() {
    let n = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    set_threads(n);
}

/// Minimum output size (elements) before a kernel fans out to threads.
///
/// Scoped threads are spawned per call; for the small tensors of a single
/// training batch the spawn/join cost dwarfs the arithmetic, so kernels
/// below this threshold always run sequentially.
pub const PAR_THRESHOLD: usize = 1 << 15;

/// Runs `f(batch_index, chunk)` for every `chunk_len`-sized chunk of `out`,
/// in parallel when more than one thread is configured **and** the total
/// work exceeds [`PAR_THRESHOLD`].
///
/// `out.len()` must be a multiple of `chunk_len`. The closure receives
/// disjoint output chunks, so no synchronization is needed.
pub fn for_each_chunk<F>(out: &mut [f32], chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if chunk_len == 0 || out.is_empty() {
        return;
    }
    assert_eq!(
        out.len() % chunk_len,
        0,
        "output length {} is not a multiple of chunk length {chunk_len}",
        out.len()
    );
    let batches = out.len() / chunk_len;
    let workers = threads().min(batches);
    if workers <= 1 || out.len() < PAR_THRESHOLD {
        for (bi, chunk) in out.chunks_exact_mut(chunk_len).enumerate() {
            f(bi, chunk);
        }
        return;
    }
    // Split the batch range into `workers` contiguous spans of chunks.
    let per = batches.div_ceil(workers);
    crossbeam::scope(|scope| {
        for (w, span) in out.chunks_mut(per * chunk_len).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                for (j, chunk) in span.chunks_exact_mut(chunk_len).enumerate() {
                    f(w * per + j, chunk);
                }
            });
        }
    })
    .expect("batch worker thread panicked");
}

/// Runs `f(i)` for every `i in 0..n` in parallel, collecting results in order.
///
/// Used for coarse-grained parallelism (e.g. training independent ensemble
/// members or isolation-forest trees).
pub fn map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let per = n.div_ceil(workers);
    crossbeam::scope(|scope| {
        for (w, span) in slots.chunks_mut(per).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                for (j, slot) in span.iter_mut().enumerate() {
                    *slot = Some(f(w * per + j));
                }
            });
        }
    })
    .expect("map worker thread panicked");
    slots
        .into_iter()
        .map(|s| s.expect("worker did not fill slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_chunks_cover_all() {
        set_threads(1);
        let mut out = vec![0.0f32; 12];
        for_each_chunk(&mut out, 3, |bi, chunk| {
            for c in chunk.iter_mut() {
                *c = bi as f32;
            }
        });
        assert_eq!(
            out,
            vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0]
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let work = |bi: usize, chunk: &mut [f32]| {
            for (j, c) in chunk.iter_mut().enumerate() {
                *c = (bi * 31 + j) as f32;
            }
        };
        // Large enough to clear PAR_THRESHOLD so the threaded path runs.
        let n = 2 * PAR_THRESHOLD;
        set_threads(1);
        let mut seq = vec![0.0f32; n];
        for_each_chunk(&mut seq, n / 16, work);
        set_threads(4);
        let mut par = vec![0.0f32; n];
        for_each_chunk(&mut par, n / 16, work);
        set_threads(1);
        assert_eq!(seq, par);
    }

    #[test]
    fn map_indexed_in_order() {
        set_threads(3);
        let v = map_indexed(10, |i| i * i);
        set_threads(1);
        assert_eq!(v, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
    }

    #[test]
    fn empty_work_is_ok() {
        let mut out: Vec<f32> = vec![];
        for_each_chunk(&mut out, 4, |_, _| panic!("must not be called"));
        let v: Vec<u8> = map_indexed(0, |_| 1u8);
        assert!(v.is_empty());
    }
}
