//! Non-linear activation functions.
//!
//! All activations are elementwise except [`Tensor::softmax_last`], which
//! normalizes over the last axis (used by the attention scores, Eq. 7 of the
//! paper).

use crate::Tensor;

/// Numerically stable logistic sigmoid of a scalar.
#[inline]
pub(crate) fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl Tensor {
    /// Elementwise logistic sigmoid `1 / (1 + e^{-x})`.
    pub fn sigmoid(&self) -> Tensor {
        self.map(sigmoid_scalar)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Elementwise rectified linear unit `max(0, x)`.
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Elementwise leaky ReLU with slope `alpha` for negative inputs.
    pub fn leaky_relu(&self, alpha: f32) -> Tensor {
        self.map(|x| if x >= 0.0 { x } else { alpha * x })
    }

    /// Softmax over the **last** axis, numerically stabilized by
    /// subtracting each row's maximum before exponentiation.
    ///
    /// Every length-`N` row of the output sums to 1.
    pub fn softmax_last(&self) -> Tensor {
        let n = *self.dims().last().expect("softmax_last on rank-0 tensor");
        assert!(n > 0, "softmax_last over empty axis");
        let mut out = self.clone();
        for row in out.data_mut().chunks_exact_mut(n) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            let inv = 1.0 / sum;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{assert_close, Tensor};

    #[test]
    fn sigmoid_known_values() {
        let x = Tensor::from_vec(vec![0.0, 100.0, -100.0], &[3]);
        let y = x.sigmoid();
        assert_close(y.data(), &[0.5, 1.0, 0.0], 1e-6);
    }

    #[test]
    fn sigmoid_is_stable_for_large_inputs() {
        let x = Tensor::from_vec(vec![1e4, -1e4], &[2]);
        let y = x.sigmoid();
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn tanh_and_relu() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        assert_close(
            x.tanh().data(),
            &[(-1.0f32).tanh(), 0.0, 2.0f32.tanh()],
            1e-6,
        );
        assert_eq!(x.relu().data(), &[0.0, 0.0, 2.0]);
        assert_close(x.leaky_relu(0.1).data(), &[-0.1, 0.0, 2.0], 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let y = x.softmax_last();
        for row in y.data().chunks_exact(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row sums to {s}");
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let y = x.softmax_last();
        let z = x.add_scalar(100.0).softmax_last();
        assert_close(y.data(), z.data(), 1e-6);
    }

    #[test]
    fn softmax_handles_extreme_values() {
        let x = Tensor::from_vec(vec![1000.0, 0.0, -1000.0], &[1, 3]);
        let y = x.softmax_last();
        assert!(y.data().iter().all(|v| v.is_finite()));
        assert_close(&[y.data()[0]], &[1.0], 1e-5);
    }

    #[test]
    fn softmax_uniform_input_gives_uniform_output() {
        let x = Tensor::full(&[2, 4], 3.7);
        let y = x.softmax_last();
        assert_close(y.data(), &[0.25; 8], 1e-6);
    }
}
