//! Non-linear activation functions and their gradients.
//!
//! All activations are elementwise except [`Tensor::softmax_last`], which
//! normalizes over the last axis (used by the attention scores, Eq. 7 of the
//! paper). Forward and backward kernels dispatch through [`crate::simd`]:
//! 8-lane AVX2 loops (with a polynomial `exp` for the sigmoid family and
//! the softmax) when available, the scalar loops otherwise.

use crate::{scratch, simd, Tensor};

/// Builds the output tensor for a `dst/src` style dispatched kernel.
fn unary(x: &Tensor, f: impl FnOnce(&mut [f32], &[f32])) -> Tensor {
    let mut out = scratch::take_zeroed(x.len());
    f(&mut out, x.data());
    Tensor::from_vec(out, x.dims())
}

impl Tensor {
    /// Elementwise logistic sigmoid `1 / (1 + e^{-x})`.
    pub fn sigmoid(&self) -> Tensor {
        unary(self, simd::sigmoid)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        unary(self, simd::tanh)
    }

    /// Elementwise rectified linear unit `max(0, x)`.
    pub fn relu(&self) -> Tensor {
        unary(self, simd::relu)
    }

    /// Elementwise leaky ReLU with slope `alpha` for negative inputs.
    pub fn leaky_relu(&self, alpha: f32) -> Tensor {
        unary(self, |dst, src| simd::leaky_relu(dst, src, alpha))
    }

    /// Backward of [`Tensor::sigmoid`] from its **output** `y` and the
    /// upstream gradient `g`: `g · y · (1 − y)`.
    pub fn sigmoid_grad_from_output(y: &Tensor, g: &Tensor) -> Tensor {
        assert_eq!(y.dims(), g.dims(), "sigmoid grad shape mismatch");
        let mut out = scratch::take_zeroed(y.len());
        simd::sigmoid_grad(&mut out, y.data(), g.data());
        Tensor::from_vec(out, y.dims())
    }

    /// Backward of [`Tensor::tanh`] from its output: `g · (1 − y²)`.
    pub fn tanh_grad_from_output(y: &Tensor, g: &Tensor) -> Tensor {
        assert_eq!(y.dims(), g.dims(), "tanh grad shape mismatch");
        let mut out = scratch::take_zeroed(y.len());
        simd::tanh_grad(&mut out, y.data(), g.data());
        Tensor::from_vec(out, y.dims())
    }

    /// Backward of [`Tensor::relu`] from its output: `y > 0 ? g : 0`.
    pub fn relu_grad_from_output(y: &Tensor, g: &Tensor) -> Tensor {
        assert_eq!(y.dims(), g.dims(), "relu grad shape mismatch");
        let mut out = scratch::take_zeroed(y.len());
        simd::relu_grad(&mut out, y.data(), g.data());
        Tensor::from_vec(out, y.dims())
    }

    /// Softmax over the **last** axis, numerically stabilized by
    /// subtracting each row's maximum before exponentiation.
    ///
    /// Every length-`N` row of the output sums to 1. The max, exp, sum,
    /// and normalize passes all run 8-wide on AVX2.
    pub fn softmax_last(&self) -> Tensor {
        let n = *self.dims().last().expect("softmax_last on rank-0 tensor");
        assert!(n > 0, "softmax_last over empty axis");
        let mut out = self.clone();
        for row in out.data_mut().chunks_exact_mut(n) {
            simd::softmax_row(row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{assert_close, Tensor};

    #[test]
    fn sigmoid_known_values() {
        let x = Tensor::from_vec(vec![0.0, 100.0, -100.0], &[3]);
        let y = x.sigmoid();
        assert_close(y.data(), &[0.5, 1.0, 0.0], 1e-6);
    }

    #[test]
    fn sigmoid_is_stable_for_large_inputs() {
        let x = Tensor::from_vec(vec![1e4, -1e4], &[2]);
        let y = x.sigmoid();
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn tanh_and_relu() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        assert_close(
            x.tanh().data(),
            &[(-1.0f32).tanh(), 0.0, 2.0f32.tanh()],
            1e-6,
        );
        assert_eq!(x.relu().data(), &[0.0, 0.0, 2.0]);
        assert_close(x.leaky_relu(0.1).data(), &[-0.1, 0.0, 2.0], 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let y = x.softmax_last();
        for row in y.data().chunks_exact(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row sums to {s}");
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let y = x.softmax_last();
        let z = x.add_scalar(100.0).softmax_last();
        assert_close(y.data(), z.data(), 1e-6);
    }

    #[test]
    fn softmax_handles_extreme_values() {
        let x = Tensor::from_vec(vec![1000.0, 0.0, -1000.0], &[1, 3]);
        let y = x.softmax_last();
        assert!(y.data().iter().all(|v| v.is_finite()));
        assert_close(&[y.data()[0]], &[1.0], 1e-5);
    }

    #[test]
    fn softmax_uniform_input_gives_uniform_output() {
        let x = Tensor::full(&[2, 4], 3.7);
        let y = x.softmax_last();
        assert_close(y.data(), &[0.25; 8], 1e-6);
    }
}
