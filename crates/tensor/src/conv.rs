//! 1-D convolution kernels with *same* and *causal* padding.
//!
//! Layout convention: inputs and outputs are `(B, C, L)` — batch, channels,
//! time — and kernels are `(C_out, C_in, K)`. Output length always equals
//! input length (the paper pads every layer so encoder/decoder states stay
//! length-`w`, Section 3.1.2–3.1.3).
//!
//! * [`Padding::Same`] pads `(K-1)/2` zeros on the left and the remainder on
//!   the right — used by the encoder, which may look at the whole window.
//! * [`Padding::Causal`] pads all `K-1` zeros on the left, so the output at
//!   time `t` depends only on inputs at times `≤ t` — used by the decoder
//!   ("observations only to be seen in the future cannot be utilized",
//!   Section 3.1.3).
//!
//! # Kernel strategy: implicit im2col GEMM
//!
//! Each batch element's convolution is one dense matrix product
//! `Y (C_out, L) = W (C_out, C_in·K) · X̃ (C_in·K, L)` where row `(ci, j)`
//! of `X̃` is the zero-padded input row `ci` shifted by `j`. Because the
//! padded row is materialized once per batch element, every row of `X̃` is
//! just a contiguous window into it — no im2col copy is needed. The product
//! runs as a dense GEMM. On AVX2+FMA hosts that product goes through the
//! packed 6×16 microkernel in [`crate::gemm`] — the weight matrix is
//! packed once per call and each batch element packs its own window
//! panels — and the kernel gradient becomes a single batch-fused GEMM of
//! depth `B·L`. The portable fallback is the register-blocked
//! 4-way-unrolled loop in this file, fusing **all** `K·C_in` taps of an
//! output row into one accumulation pass (the previous per-tap
//! shifted-axpy sweeps and their `if v == 0.0 { continue }` branches are
//! gone). The input-gradient adjoint is the same GEMM against a
//! channel-transposed, tap-reversed weight matrix. Batch elements
//! parallelize over the persistent worker pool ([`crate::par`]).

#[cfg(target_arch = "x86_64")]
use crate::gemm;
use crate::Tensor;
use crate::{par, scratch};

/// Zero-padding scheme of a 1-D convolution. See the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Padding {
    /// `(K-1)/2` zeros before, `K-1-(K-1)/2` after: output `t` sees a
    /// centered window.
    Same,
    /// `K-1` zeros before: output `t` sees only inputs `≤ t`.
    Causal,
}

impl Padding {
    /// Number of zeros inserted before the first observation for kernel
    /// size `k`.
    #[inline]
    pub fn left(self, k: usize) -> usize {
        match self {
            Padding::Same => (k - 1) / 2,
            Padding::Causal => k - 1,
        }
    }
}

/// Copies the `rows × l` matrix `src` into a zeroed `rows × (l + k - 1)`
/// buffer with `left` leading zeros per row, so that every shift
/// `0..k` of a row is a contiguous in-bounds window.
fn pad_rows(src: &[f32], rows: usize, l: usize, k: usize, left: usize) -> Vec<f32> {
    let stride = l + k - 1;
    let mut pad = scratch::take_zeroed(rows * stride);
    for r in 0..rows {
        pad[r * stride + left..r * stride + left + l].copy_from_slice(&src[r * l..(r + 1) * l]);
    }
    pad
}

/// `out (rows_out, l) += W (rows_out, rows_in·k) · X̃ (rows_in·k, l)`,
/// where row `p = r·k + j` of `X̃` is the window `pad[r][j .. j + l]` of
/// the padded matrix (`pad` rows have stride `l + k - 1`).
///
/// This is the whole convolution of one batch element as a single blocked
/// GEMM: the `p` loop is unrolled four deep with independent FMAs, and the
/// inner loop is a branch-free zip over equal-length slices.
fn conv_gemm(
    out: &mut [f32],
    wmat: &[f32],
    pad: &[f32],
    rows_out: usize,
    rows_in: usize,
    k: usize,
    l: usize,
) {
    let depth = rows_in * k;
    let stride = l + k - 1;
    debug_assert_eq!(out.len(), rows_out * l);
    debug_assert_eq!(wmat.len(), rows_out * depth);
    debug_assert_eq!(pad.len(), rows_in * stride);
    let window = |p: usize| {
        let start = (p / k) * stride + (p % k);
        &pad[start..start + l]
    };
    for r in 0..rows_out {
        let orow = &mut out[r * l..(r + 1) * l];
        let wrow = &wmat[r * depth..(r + 1) * depth];
        let mut p = 0;
        while p + 4 <= depth {
            let (w0, w1, w2, w3) = (wrow[p], wrow[p + 1], wrow[p + 2], wrow[p + 3]);
            let b0 = window(p);
            let b1 = window(p + 1);
            let b2 = window(p + 2);
            let b3 = window(p + 3);
            for ((((o, &v0), &v1), &v2), &v3) in orow.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
                *o += w0 * v0 + w1 * v1 + w2 * v2 + w3 * v3;
            }
            p += 4;
        }
        for pp in p..depth {
            let wv = wrow[pp];
            for (o, &v) in orow.iter_mut().zip(window(pp)) {
                *o += wv * v;
            }
        }
    }
}

/// Fused kernel-gradient row: `gw[j] += Σ_t g[t] * x[t + j - pl]` for all
/// `K` taps in one pass over `g` (one load of `g[t]` feeds every tap),
/// with the at most `K-1` boundary positions handled by a guarded loop.
fn kernel_grad_row(gw_row: &mut [f32], g_row: &[f32], x_row: &[f32], pl: usize) {
    let l = g_row.len();
    let k = gw_row.len();
    debug_assert_eq!(x_row.len(), l);
    let lo = pl.min(l);
    let hi = (l + pl + 1).saturating_sub(k).min(l).max(lo);

    // Guarded edges (per tap, short).
    for t in (0..lo).chain(hi..l) {
        let gv = g_row[t];
        for (j, gw_v) in gw_row.iter_mut().enumerate() {
            let s = t as isize + j as isize - pl as isize;
            if s >= 0 && (s as usize) < l {
                *gw_v += gv * x_row[s as usize];
            }
        }
    }

    // Dense interior: every tap in range.
    if hi <= lo {
        return;
    }
    match gw_row {
        [gw0, gw1, gw2] => {
            // The paper's default K = 3 in registers.
            let (mut a0, mut a1, mut a2) = (0.0f32, 0.0f32, 0.0f32);
            let x0 = &x_row[lo - pl..hi - pl];
            let x1 = &x_row[lo - pl + 1..hi - pl + 1];
            let x2 = &x_row[lo - pl + 2..hi - pl + 2];
            for (((&gv, &v0), &v1), &v2) in g_row[lo..hi].iter().zip(x0).zip(x1).zip(x2) {
                a0 += gv * v0;
                a1 += gv * v1;
                a2 += gv * v2;
            }
            *gw0 += a0;
            *gw1 += a1;
            *gw2 += a2;
        }
        _ => {
            for (t, &gv) in (lo..hi).zip(&g_row[lo..hi]) {
                let xs = &x_row[t - pl..t - pl + k];
                for (gw_v, &xv) in gw_row.iter_mut().zip(xs) {
                    *gw_v += gv * xv;
                }
            }
        }
    }
}

impl Tensor {
    /// 1-D convolution: input `(B, C_in, L)`, kernel `(C_out, C_in, K)` →
    /// output `(B, C_out, L)`.
    pub fn conv1d(&self, kernel: &Tensor, padding: Padding) -> Tensor {
        assert_eq!(self.rank(), 3, "conv1d input must be rank 3 (B, C, L)");
        assert_eq!(
            kernel.rank(),
            3,
            "conv1d kernel must be rank 3 (Cout, Cin, K)"
        );
        let (b, cin, l) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (cout, cin2, k) = (kernel.dims()[0], kernel.dims()[1], kernel.dims()[2]);
        assert_eq!(
            cin, cin2,
            "conv1d channel mismatch: input {cin}, kernel {cin2}"
        );
        assert!(k >= 1, "conv1d kernel size must be >= 1");
        let pl = padding.left(k);

        if l > 0 {
            let x = self.data();
            let w = kernel.data();
            #[cfg(target_arch = "x86_64")]
            if gemm::enabled(cout * cin * k * l) {
                // The packed path *stores* every output element (no
                // accumulation), so the buffer needs no zeroing.
                let mut out = scratch::take_full(b * cout * l);
                gemm::conv_batch(
                    x,
                    w,
                    &mut out,
                    &gemm::ConvShape {
                        batches: b,
                        rows_in: cin,
                        rows_out: cout,
                        k,
                        l,
                        pl,
                    },
                );
                return Tensor::from_vec(out, &[b, cout, l]);
            }
            // One GEMM per batch element; the kernel's (co, ci, j) layout
            // already matches the X̃ row order (ci, j).
            let mut out = scratch::take_zeroed(b * cout * l);
            par::for_each_chunk(&mut out, cout * l, |bi, y| {
                let xpad = pad_rows(&x[bi * cin * l..(bi + 1) * cin * l], cin, l, k, pl);
                conv_gemm(y, w, &xpad, cout, cin, k, l);
                scratch::recycle(xpad);
            });
            return Tensor::from_vec(out, &[b, cout, l]);
        }
        Tensor::from_vec(scratch::take_zeroed(b * cout * l), &[b, cout, l])
    }

    /// Gradient of [`Tensor::conv1d`] with respect to its **input**.
    ///
    /// `grad_out` is `(B, C_out, L)`; the result matches the input shape
    /// `(B, C_in, L)`. The adjoint of the forward GEMM is the same GEMM
    /// with channels transposed, taps reversed, and the padding mirrored:
    /// `gx[ci][s] = Σ_{co,j} K[co][ci][j] · gout[co][s + pl - j]`.
    pub fn conv1d_input_grad(grad_out: &Tensor, kernel: &Tensor, padding: Padding) -> Tensor {
        assert_eq!(grad_out.rank(), 3, "grad_out must be rank 3");
        assert_eq!(kernel.rank(), 3, "kernel must be rank 3");
        let (b, cout, l) = (grad_out.dims()[0], grad_out.dims()[1], grad_out.dims()[2]);
        let (cout2, cin, k) = (kernel.dims()[0], kernel.dims()[1], kernel.dims()[2]);
        assert_eq!(cout, cout2, "conv1d_input_grad channel mismatch");
        let pl = padding.left(k);

        // Reorder the kernel once: wt[ci][co·k + j'] = K[co][ci][k-1-j'].
        // The scatter covers every index, so no zeroing is needed.
        let w = kernel.data();
        let mut wt = scratch::take_full(cin * cout * k);
        for co in 0..cout {
            for ci in 0..cin {
                for j in 0..k {
                    wt[ci * cout * k + co * k + (k - 1 - j)] = w[(co * cin + ci) * k + j];
                }
            }
        }

        if l > 0 {
            let g = grad_out.data();
            let wt_ref = &wt;
            #[cfg(target_arch = "x86_64")]
            if gemm::enabled(cin * cout * k * l) {
                // Store-mode packed path: no zeroing of the output needed.
                let mut gx = scratch::take_full(b * cin * l);
                gemm::conv_batch(
                    g,
                    wt_ref,
                    &mut gx,
                    &gemm::ConvShape {
                        batches: b,
                        rows_in: cout,
                        rows_out: cin,
                        k,
                        l,
                        pl: k - 1 - pl,
                    },
                );
                scratch::recycle(wt);
                return Tensor::from_vec(gx, &[b, cin, l]);
            }
            let mut gx = scratch::take_zeroed(b * cin * l);
            par::for_each_chunk(&mut gx, cin * l, |bi, gxb| {
                let gpad = pad_rows(
                    &g[bi * cout * l..(bi + 1) * cout * l],
                    cout,
                    l,
                    k,
                    k - 1 - pl,
                );
                conv_gemm(gxb, wt_ref, &gpad, cin, cout, k, l);
                scratch::recycle(gpad);
            });
            scratch::recycle(wt);
            return Tensor::from_vec(gx, &[b, cin, l]);
        }
        scratch::recycle(wt);
        Tensor::from_vec(scratch::take_zeroed(b * cin * l), &[b, cin, l])
    }

    /// Gradient of [`Tensor::conv1d`] with respect to its **kernel**.
    ///
    /// `input` is `(B, C_in, L)`, `grad_out` is `(B, C_out, L)`; the result
    /// matches the kernel shape `(C_out, C_in, K)`. All `K` taps of a
    /// `(co, ci)` row accumulate in one fused pass per time row.
    pub fn conv1d_kernel_grad(
        input: &Tensor,
        grad_out: &Tensor,
        k: usize,
        padding: Padding,
    ) -> Tensor {
        assert_eq!(input.rank(), 3, "input must be rank 3");
        assert_eq!(grad_out.rank(), 3, "grad_out must be rank 3");
        let (b, cin, l) = (input.dims()[0], input.dims()[1], input.dims()[2]);
        let (b2, cout, l2) = (grad_out.dims()[0], grad_out.dims()[1], grad_out.dims()[2]);
        assert_eq!(b, b2, "conv1d_kernel_grad batch mismatch");
        assert_eq!(l, l2, "conv1d_kernel_grad length mismatch");
        let pl = padding.left(k);

        let x = input.data();
        let g = grad_out.data();
        #[cfg(target_arch = "x86_64")]
        if l > 0 && gemm::enabled(b * l * cout * cin * k) {
            // `gemm` stores its first depth slab, so the output needs no
            // zeroing (the guards above ensure a non-empty contraction).
            let mut gw = scratch::take_full(cout * cin * k);
            gemm::conv_kernel_grad(
                x,
                g,
                &mut gw,
                &gemm::ConvShape {
                    batches: b,
                    rows_in: cin,
                    rows_out: cout,
                    k,
                    l,
                    pl,
                },
            );
            return Tensor::from_vec(gw, &[cout, cin, k]);
        }
        let mut gw = scratch::take_zeroed(cout * cin * k);
        par::for_each_chunk(&mut gw, k, |row, gw_row| {
            let co = row / cin;
            let ci = row % cin;
            for bi in 0..b {
                let x_row = &x[(bi * cin + ci) * l..(bi * cin + ci + 1) * l];
                let g_row = &g[(bi * cout + co) * l..(bi * cout + co + 1) * l];
                kernel_grad_row(gw_row, g_row, x_row, pl);
            }
        });
        Tensor::from_vec(gw, &[cout, cin, k])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    /// Textbook reference convolution used to validate the optimized kernels.
    fn conv1d_reference(x: &Tensor, w: &Tensor, padding: Padding) -> Tensor {
        let (b, cin, l) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        let (cout, _, k) = (w.dims()[0], w.dims()[1], w.dims()[2]);
        let pl = padding.left(k) as isize;
        let mut out = Tensor::zeros(&[b, cout, l]);
        for bi in 0..b {
            for co in 0..cout {
                for t in 0..l {
                    let mut acc = 0.0;
                    for ci in 0..cin {
                        for j in 0..k {
                            let s = t as isize + j as isize - pl;
                            if s >= 0 && (s as usize) < l {
                                acc += w.at(&[co, ci, j]) * x.at(&[bi, ci, s as usize]);
                            }
                        }
                    }
                    out.set(&[bi, co, t], acc);
                }
            }
        }
        out
    }

    fn rand_tensor(dims: &[usize], seed: u64) -> Tensor {
        // Small deterministic pseudo-random fill (LCG), enough for kernels.
        let n: usize = dims.iter().product();
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let data = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0
            })
            .collect();
        Tensor::from_vec(data, dims)
    }

    #[test]
    fn delta_kernel_is_identity_same() {
        // Kernel [0, 1, 0] with Same padding reproduces the input.
        let x = rand_tensor(&[1, 1, 7], 3);
        let w = Tensor::from_vec(vec![0.0, 1.0, 0.0], &[1, 1, 3]);
        let y = x.conv1d(&w, Padding::Same);
        assert_close(y.data(), x.data(), 1e-6);
    }

    #[test]
    fn shift_kernel_shifts_right() {
        // Kernel [1, 0, 0] with Same padding (pl=1) gives y[t] = x[t-1].
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 4]);
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0], &[1, 1, 3]);
        let y = x.conv1d(&w, Padding::Same);
        assert_eq!(y.data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn causal_uses_only_past() {
        // With causal padding and kernel summing all taps, output at t
        // equals the sum of the last K observations up to t.
        let x = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0, 1.0], &[1, 1, 5]);
        let w = Tensor::ones(&[1, 1, 3]);
        let y = x.conv1d(&w, Padding::Causal);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn matches_reference_same() {
        let x = rand_tensor(&[2, 3, 11], 7);
        let w = rand_tensor(&[4, 3, 5], 9);
        let fast = x.conv1d(&w, Padding::Same);
        let slow = conv1d_reference(&x, &w, Padding::Same);
        assert_close(fast.data(), slow.data(), 1e-5);
    }

    #[test]
    fn matches_reference_causal() {
        let x = rand_tensor(&[2, 2, 9], 17);
        let w = rand_tensor(&[3, 2, 3], 23);
        let fast = x.conv1d(&w, Padding::Causal);
        let slow = conv1d_reference(&x, &w, Padding::Causal);
        assert_close(fast.data(), slow.data(), 1e-5);
    }

    #[test]
    fn matches_reference_all_kernel_sizes() {
        // Unroll boundaries of the GEMM depth (C_in·K) and kernels wider
        // than the time row.
        for k in [1usize, 2, 3, 4, 5, 6, 7, 9, 11] {
            for padding in [Padding::Same, Padding::Causal] {
                let x = rand_tensor(&[2, 2, 8], 100 + k as u64);
                let w = rand_tensor(&[3, 2, k], 200 + k as u64);
                let fast = x.conv1d(&w, padding);
                let slow = conv1d_reference(&x, &w, padding);
                assert_close(fast.data(), slow.data(), 1e-5);
            }
        }
    }

    #[test]
    fn multichannel_sums_channels() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 10.0, 20.0], &[1, 2, 2]);
        let w = Tensor::from_vec(vec![1.0, 1.0], &[1, 2, 1]); // K=1 sums channels
        let y = x.conv1d(&w, Padding::Same);
        assert_eq!(y.data(), &[11.0, 22.0]);
    }

    /// Checks the adjoint identity ⟨conv(x), g⟩ = ⟨x, conv_input_grad(g)⟩,
    /// which must hold for the gradient kernels to be correct adjoints.
    #[test]
    fn input_grad_is_adjoint() {
        for padding in [Padding::Same, Padding::Causal] {
            let x = rand_tensor(&[2, 3, 8], 31);
            let w = rand_tensor(&[4, 3, 3], 37);
            let g = rand_tensor(&[2, 4, 8], 41);
            let y = x.conv1d(&w, padding);
            let gx = Tensor::conv1d_input_grad(&g, &w, padding);
            let lhs: f32 = y.data().iter().zip(g.data()).map(|(a, b)| a * b).sum();
            let rhs: f32 = x.data().iter().zip(gx.data()).map(|(a, b)| a * b).sum();
            assert!(
                (lhs - rhs).abs() < 1e-3,
                "adjoint mismatch: {lhs} vs {rhs} ({padding:?})"
            );
        }
    }

    /// The adjoint identity for wide kernels (taps wider than the row).
    #[test]
    fn input_grad_is_adjoint_wide_kernel() {
        for padding in [Padding::Same, Padding::Causal] {
            let x = rand_tensor(&[1, 2, 24], 51);
            let w = rand_tensor(&[2, 2, 19], 53);
            let g = rand_tensor(&[1, 2, 24], 59);
            let y = x.conv1d(&w, padding);
            let gx = Tensor::conv1d_input_grad(&g, &w, padding);
            let lhs: f32 = y.data().iter().zip(g.data()).map(|(a, b)| a * b).sum();
            let rhs: f32 = x.data().iter().zip(gx.data()).map(|(a, b)| a * b).sum();
            assert!(
                (lhs - rhs).abs() < 1e-2,
                "adjoint mismatch: {lhs} vs {rhs} ({padding:?})"
            );
        }
    }

    /// Finite-difference check of the kernel gradient on a scalar loss
    /// L = Σ conv(x, w).
    #[test]
    fn kernel_grad_matches_finite_difference() {
        for padding in [Padding::Same, Padding::Causal] {
            let x = rand_tensor(&[1, 2, 6], 43);
            let mut w = rand_tensor(&[2, 2, 3], 47);
            let gout = Tensor::ones(&[1, 2, 6]);
            let gw = Tensor::conv1d_kernel_grad(&x, &gout, 3, padding);
            let eps = 1e-3;
            for idx in 0..w.len() {
                let orig = w.data()[idx];
                w.data_mut()[idx] = orig + eps;
                let up: f32 = x.conv1d(&w, padding).data().iter().sum();
                w.data_mut()[idx] = orig - eps;
                let down: f32 = x.conv1d(&w, padding).data().iter().sum();
                w.data_mut()[idx] = orig;
                let fd = (up - down) / (2.0 * eps);
                assert!(
                    (fd - gw.data()[idx]).abs() < 1e-2,
                    "kernel grad mismatch at {idx}: fd {fd} vs {} ({padding:?})",
                    gw.data()[idx]
                );
            }
        }
    }
}
