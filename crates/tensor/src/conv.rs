//! 1-D convolution kernels with *same* and *causal* padding.
//!
//! Layout convention: inputs and outputs are `(B, C, L)` — batch, channels,
//! time — and kernels are `(C_out, C_in, K)`. Output length always equals
//! input length (the paper pads every layer so encoder/decoder states stay
//! length-`w`, Section 3.1.2–3.1.3).
//!
//! * [`Padding::Same`] pads `(K-1)/2` zeros on the left and the remainder on
//!   the right — used by the encoder, which may look at the whole window.
//! * [`Padding::Causal`] pads all `K-1` zeros on the left, so the output at
//!   time `t` depends only on inputs at times `≤ t` — used by the decoder
//!   ("observations only to be seen in the future cannot be utilized",
//!   Section 3.1.3).
//!
//! Besides the forward kernel this module exposes the two adjoint kernels
//! (`conv1d_input_grad`, `conv1d_kernel_grad`) that the autograd engine
//! dispatches to. All three reduce to shifted axpy/dot loops over contiguous
//! time rows, which vectorize well and parallelize over `(batch, channel)`
//! rows.

use crate::par;
use crate::Tensor;

/// Zero-padding scheme of a 1-D convolution. See the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Padding {
    /// `(K-1)/2` zeros before, `K-1-(K-1)/2` after: output `t` sees a
    /// centered window.
    Same,
    /// `K-1` zeros before: output `t` sees only inputs `≤ t`.
    Causal,
}

impl Padding {
    /// Number of zeros inserted before the first observation for kernel
    /// size `k`.
    #[inline]
    pub fn left(self, k: usize) -> usize {
        match self {
            Padding::Same => (k - 1) / 2,
            Padding::Causal => k - 1,
        }
    }
}

/// `dst[t] += scale * src[t + shift]` for every `t` where both indices are
/// in range. `shift` may be negative.
#[inline]
fn shifted_axpy(dst: &mut [f32], src: &[f32], shift: isize, scale: f32) {
    // Valid t range: 0 <= t < dst.len() and 0 <= t + shift < src.len().
    let dst_range = if shift >= 0 {
        let s = shift as usize;
        if s >= src.len() {
            return;
        }
        0..dst.len().min(src.len() - s)
    } else {
        let s = (-shift) as usize;
        if s >= dst.len() {
            return;
        }
        s..dst.len().min(src.len() + s)
    };
    if dst_range.is_empty() {
        return;
    }
    let n = dst_range.len();
    let src_start = (dst_range.start as isize + shift) as usize;
    let d = &mut dst[dst_range.start..dst_range.start + n];
    let s = &src[src_start..src_start + n];
    for (dv, &sv) in d.iter_mut().zip(s.iter()) {
        *dv += scale * sv;
    }
}

/// `Σ_t a[t] * b[t + shift]` over every `t` where both indices are in range.
#[inline]
fn shifted_dot(a: &[f32], b: &[f32], shift: isize) -> f32 {
    let (a_start, b_start) = if shift >= 0 {
        (0usize, shift as usize)
    } else {
        ((-shift) as usize, 0usize)
    };
    if b_start >= b.len() || a_start >= a.len() {
        return 0.0;
    }
    let n = (a.len() - a_start).min(b.len() - b_start);
    a[a_start..a_start + n]
        .iter()
        .zip(b[b_start..b_start + n].iter())
        .map(|(&x, &y)| x * y)
        .sum()
}

impl Tensor {
    /// 1-D convolution: input `(B, C_in, L)`, kernel `(C_out, C_in, K)` →
    /// output `(B, C_out, L)`.
    pub fn conv1d(&self, kernel: &Tensor, padding: Padding) -> Tensor {
        assert_eq!(self.rank(), 3, "conv1d input must be rank 3 (B, C, L)");
        assert_eq!(
            kernel.rank(),
            3,
            "conv1d kernel must be rank 3 (Cout, Cin, K)"
        );
        let (b, cin, l) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (cout, cin2, k) = (kernel.dims()[0], kernel.dims()[1], kernel.dims()[2]);
        assert_eq!(
            cin, cin2,
            "conv1d channel mismatch: input {cin}, kernel {cin2}"
        );
        assert!(k >= 1, "conv1d kernel size must be >= 1");
        let pl = padding.left(k) as isize;

        let mut out = vec![0.0f32; b * cout * l];
        let x = self.data();
        let w = kernel.data();
        par::for_each_chunk(&mut out, l, |row, out_row| {
            let bi = row / cout;
            let co = row % cout;
            for ci in 0..cin {
                let x_row = &x[(bi * cin + ci) * l..(bi * cin + ci + 1) * l];
                let w_row = &w[(co * cin + ci) * k..(co * cin + ci + 1) * k];
                for (j, &kv) in w_row.iter().enumerate() {
                    if kv != 0.0 {
                        shifted_axpy(out_row, x_row, j as isize - pl, kv);
                    }
                }
            }
        });
        Tensor::from_vec(out, &[b, cout, l])
    }

    /// Gradient of [`Tensor::conv1d`] with respect to its **input**.
    ///
    /// `grad_out` is `(B, C_out, L)`; the result matches the input shape
    /// `(B, C_in, L)`.
    pub fn conv1d_input_grad(grad_out: &Tensor, kernel: &Tensor, padding: Padding) -> Tensor {
        assert_eq!(grad_out.rank(), 3, "grad_out must be rank 3");
        assert_eq!(kernel.rank(), 3, "kernel must be rank 3");
        let (b, cout, l) = (grad_out.dims()[0], grad_out.dims()[1], grad_out.dims()[2]);
        let (cout2, cin, k) = (kernel.dims()[0], kernel.dims()[1], kernel.dims()[2]);
        assert_eq!(cout, cout2, "conv1d_input_grad channel mismatch");
        let pl = padding.left(k) as isize;

        let mut gx = vec![0.0f32; b * cin * l];
        let g = grad_out.data();
        let w = kernel.data();
        par::for_each_chunk(&mut gx, l, |row, gx_row| {
            let bi = row / cin;
            let ci = row % cin;
            for co in 0..cout {
                let g_row = &g[(bi * cout + co) * l..(bi * cout + co + 1) * l];
                let w_row = &w[(co * cin + ci) * k..(co * cin + ci + 1) * k];
                // x[s] contributed to out[t] with t = s - j + pl, so
                // gx[s] += K[j] * gout[s + pl - j].
                for (j, &kv) in w_row.iter().enumerate() {
                    if kv != 0.0 {
                        shifted_axpy(gx_row, g_row, pl - j as isize, kv);
                    }
                }
            }
        });
        Tensor::from_vec(gx, &[b, cin, l])
    }

    /// Gradient of [`Tensor::conv1d`] with respect to its **kernel**.
    ///
    /// `input` is `(B, C_in, L)`, `grad_out` is `(B, C_out, L)`; the result
    /// matches the kernel shape `(C_out, C_in, K)`.
    pub fn conv1d_kernel_grad(
        input: &Tensor,
        grad_out: &Tensor,
        k: usize,
        padding: Padding,
    ) -> Tensor {
        assert_eq!(input.rank(), 3, "input must be rank 3");
        assert_eq!(grad_out.rank(), 3, "grad_out must be rank 3");
        let (b, cin, l) = (input.dims()[0], input.dims()[1], input.dims()[2]);
        let (b2, cout, l2) = (grad_out.dims()[0], grad_out.dims()[1], grad_out.dims()[2]);
        assert_eq!(b, b2, "conv1d_kernel_grad batch mismatch");
        assert_eq!(l, l2, "conv1d_kernel_grad length mismatch");
        let pl = padding.left(k) as isize;

        let mut gw = vec![0.0f32; cout * cin * k];
        let x = input.data();
        let g = grad_out.data();
        par::for_each_chunk(&mut gw, k, |row, gw_row| {
            let co = row / cin;
            let ci = row % cin;
            for bi in 0..b {
                let x_row = &x[(bi * cin + ci) * l..(bi * cin + ci + 1) * l];
                let g_row = &g[(bi * cout + co) * l..(bi * cout + co + 1) * l];
                for (j, gw_v) in gw_row.iter_mut().enumerate() {
                    // gK[j] = Σ_t gout[t] * x[t + j - pl]
                    *gw_v += shifted_dot(g_row, x_row, j as isize - pl);
                }
            }
        });
        Tensor::from_vec(gw, &[cout, cin, k])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    /// Textbook reference convolution used to validate the optimized kernels.
    fn conv1d_reference(x: &Tensor, w: &Tensor, padding: Padding) -> Tensor {
        let (b, cin, l) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        let (cout, _, k) = (w.dims()[0], w.dims()[1], w.dims()[2]);
        let pl = padding.left(k) as isize;
        let mut out = Tensor::zeros(&[b, cout, l]);
        for bi in 0..b {
            for co in 0..cout {
                for t in 0..l {
                    let mut acc = 0.0;
                    for ci in 0..cin {
                        for j in 0..k {
                            let s = t as isize + j as isize - pl;
                            if s >= 0 && (s as usize) < l {
                                acc += w.at(&[co, ci, j]) * x.at(&[bi, ci, s as usize]);
                            }
                        }
                    }
                    out.set(&[bi, co, t], acc);
                }
            }
        }
        out
    }

    fn rand_tensor(dims: &[usize], seed: u64) -> Tensor {
        // Small deterministic pseudo-random fill (LCG), enough for kernels.
        let n: usize = dims.iter().product();
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let data = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0
            })
            .collect();
        Tensor::from_vec(data, dims)
    }

    #[test]
    fn delta_kernel_is_identity_same() {
        // Kernel [0, 1, 0] with Same padding reproduces the input.
        let x = rand_tensor(&[1, 1, 7], 3);
        let w = Tensor::from_vec(vec![0.0, 1.0, 0.0], &[1, 1, 3]);
        let y = x.conv1d(&w, Padding::Same);
        assert_close(y.data(), x.data(), 1e-6);
    }

    #[test]
    fn shift_kernel_shifts_right() {
        // Kernel [1, 0, 0] with Same padding (pl=1) gives y[t] = x[t-1].
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 4]);
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0], &[1, 1, 3]);
        let y = x.conv1d(&w, Padding::Same);
        assert_eq!(y.data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn causal_uses_only_past() {
        // With causal padding and kernel summing all taps, output at t
        // equals the sum of the last K observations up to t.
        let x = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0, 1.0], &[1, 1, 5]);
        let w = Tensor::ones(&[1, 1, 3]);
        let y = x.conv1d(&w, Padding::Causal);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn matches_reference_same() {
        let x = rand_tensor(&[2, 3, 11], 7);
        let w = rand_tensor(&[4, 3, 5], 9);
        let fast = x.conv1d(&w, Padding::Same);
        let slow = conv1d_reference(&x, &w, Padding::Same);
        assert_close(fast.data(), slow.data(), 1e-5);
    }

    #[test]
    fn matches_reference_causal() {
        let x = rand_tensor(&[2, 2, 9], 17);
        let w = rand_tensor(&[3, 2, 3], 23);
        let fast = x.conv1d(&w, Padding::Causal);
        let slow = conv1d_reference(&x, &w, Padding::Causal);
        assert_close(fast.data(), slow.data(), 1e-5);
    }

    #[test]
    fn multichannel_sums_channels() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 10.0, 20.0], &[1, 2, 2]);
        let w = Tensor::from_vec(vec![1.0, 1.0], &[1, 2, 1]); // K=1 sums channels
        let y = x.conv1d(&w, Padding::Same);
        assert_eq!(y.data(), &[11.0, 22.0]);
    }

    /// Checks the adjoint identity ⟨conv(x), g⟩ = ⟨x, conv_input_grad(g)⟩,
    /// which must hold for the gradient kernels to be correct adjoints.
    #[test]
    fn input_grad_is_adjoint() {
        for padding in [Padding::Same, Padding::Causal] {
            let x = rand_tensor(&[2, 3, 8], 31);
            let w = rand_tensor(&[4, 3, 3], 37);
            let g = rand_tensor(&[2, 4, 8], 41);
            let y = x.conv1d(&w, padding);
            let gx = Tensor::conv1d_input_grad(&g, &w, padding);
            let lhs: f32 = y.data().iter().zip(g.data()).map(|(a, b)| a * b).sum();
            let rhs: f32 = x.data().iter().zip(gx.data()).map(|(a, b)| a * b).sum();
            assert!(
                (lhs - rhs).abs() < 1e-3,
                "adjoint mismatch: {lhs} vs {rhs} ({padding:?})"
            );
        }
    }

    /// Finite-difference check of the kernel gradient on a scalar loss
    /// L = Σ conv(x, w).
    #[test]
    fn kernel_grad_matches_finite_difference() {
        for padding in [Padding::Same, Padding::Causal] {
            let x = rand_tensor(&[1, 2, 6], 43);
            let mut w = rand_tensor(&[2, 2, 3], 47);
            let gout = Tensor::ones(&[1, 2, 6]);
            let gw = Tensor::conv1d_kernel_grad(&x, &gout, 3, padding);
            let eps = 1e-3;
            for idx in 0..w.len() {
                let orig = w.data()[idx];
                w.data_mut()[idx] = orig + eps;
                let up: f32 = x.conv1d(&w, padding).data().iter().sum();
                w.data_mut()[idx] = orig - eps;
                let down: f32 = x.conv1d(&w, padding).data().iter().sum();
                w.data_mut()[idx] = orig;
                let fd = (up - down) / (2.0 * eps);
                assert!(
                    (fd - gw.data()[idx]).abs() < 1e-2,
                    "kernel grad mismatch at {idx}: fd {fd} vs {} ({padding:?})",
                    gw.data()[idx]
                );
            }
        }
    }
}
