//! The core dense tensor type and its elementwise operations.

use crate::{scratch, simd, Shape};
use std::fmt;

/// A dense, row-major, contiguous tensor of `f32` values.
///
/// `Tensor` is the single array type used across the whole reproduction.
/// All kernels allocate fresh output tensors — drawn from the thread-local
/// [`scratch`] buffer pool so hot loops stop hammering the allocator —
/// and in-place variants are suffixed with `_inplace`. Buffers return to
/// the pool via [`Tensor::recycle`] (the autograd tape does this for every
/// node it drops).
#[derive(PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        // Clone through the scratch pool: tensor clones are hot in the
        // training loop (parameter injection, gradient fan-out).
        Tensor {
            shape: self.shape.clone(),
            data: scratch::take_copied(&self.data),
        }
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Builds a tensor from a flat row-major buffer and a shape.
    ///
    /// Panics if `data.len()` does not equal the shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.len()
        );
        Tensor { shape, data }
    }

    /// A tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// A zero tensor whose storage is drawn from the thread-local
    /// [`scratch`] pool. Prefer this in hot loops; pair with
    /// [`Tensor::recycle`] to keep the pool primed.
    pub fn zeros_pooled(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor {
            shape,
            data: scratch::take_zeroed(len),
        }
    }

    /// A constant tensor whose storage is drawn from the thread-local
    /// [`scratch`] pool.
    pub fn full_pooled(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        let mut data = scratch::take(len);
        data.resize(len, value);
        Tensor { shape, data }
    }

    /// Builds a tensor by draining `iter` into a pooled buffer.
    ///
    /// Panics if the iterator does not yield exactly the shape's element
    /// count.
    pub fn from_iter_pooled(dims: &[usize], iter: impl IntoIterator<Item = f32>) -> Self {
        let shape = Shape::new(dims);
        let mut data = scratch::take(shape.len());
        data.extend(iter);
        assert_eq!(
            data.len(),
            shape.len(),
            "iterator yielded {} elements for shape {} ({} elements)",
            data.len(),
            shape,
            shape.len()
        );
        Tensor { shape, data }
    }

    /// Consumes the tensor, returning its buffer to the thread-local
    /// [`scratch`] pool so the next allocation can reuse it.
    pub fn recycle(self) {
        scratch::recycle(self.data);
    }

    /// A tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor {
            shape,
            data: vec![value; len],
        }
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// A rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::new(&[]),
            data: vec![value],
        }
    }

    /// A rank-1 tensor with values `0, 1, …, n-1`.
    pub fn arange(n: usize) -> Self {
        Tensor::from_vec((0..n).map(|i| i as f32).collect(), &[n])
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes, outermost first.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Rank (number of dimensions).
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat row-major data buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index. Panics on out-of-range indices.
    #[inline]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-index. Panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// The single value of a rank-0 or single-element tensor.
    ///
    /// Panics if the tensor holds more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.len(),
            1,
            "item() on tensor with {} elements",
            self.len()
        );
        self.data[0]
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Reinterprets the tensor with a new shape of equal element count.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.len(),
            self.len(),
            "cannot reshape {} elements into shape {}",
            self.len(),
            shape
        );
        Tensor {
            shape,
            data: scratch::take_copied(&self.data),
        }
    }

    /// Transposes a rank-2 tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(
            self.rank(),
            2,
            "transpose() requires rank 2, got {}",
            self.rank()
        );
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = scratch::take_zeroed(m * n);
        for i in 0..m {
            let row = &self.data[i * n..(i + 1) * n];
            for (j, &v) in row.iter().enumerate() {
                out[j * m + i] = v;
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Swaps the last two axes of a rank-3 tensor: `(B, M, N) → (B, N, M)`.
    pub fn transpose12(&self) -> Tensor {
        assert_eq!(
            self.rank(),
            3,
            "transpose12() requires rank 3, got {}",
            self.rank()
        );
        let (b, m, n) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let mut out = scratch::take_zeroed(b * m * n);
        for bi in 0..b {
            let src = &self.data[bi * m * n..(bi + 1) * m * n];
            let dst = &mut out[bi * m * n..(bi + 1) * m * n];
            for i in 0..m {
                let row = &src[i * n..(i + 1) * n];
                for (j, &v) in row.iter().enumerate() {
                    dst[j * m + i] = v;
                }
            }
        }
        Tensor::from_vec(out, &[b, n, m])
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic
    // ------------------------------------------------------------------

    fn zip_with(&self, other: &Tensor, op: impl Fn(f32, f32) -> f32, name: &str) -> Tensor {
        assert_eq!(
            self.dims(),
            other.dims(),
            "{name}: shape mismatch {} vs {}",
            self.shape,
            other.shape
        );
        let mut data = scratch::take(self.data.len());
        data.extend(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| op(a, b)),
        );
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Elementwise sum. Shapes must match exactly.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b, "add")
    }

    /// Elementwise difference. Shapes must match exactly.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b, "sub")
    }

    /// Elementwise (Hadamard) product. Shapes must match exactly.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b, "mul")
    }

    /// Elementwise quotient. Shapes must match exactly.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a / b, "div")
    }

    /// Adds `other` into `self` in place. Shapes must match exactly.
    pub fn add_inplace(&mut self, other: &Tensor) {
        assert_eq!(
            self.dims(),
            other.dims(),
            "add_inplace: shape mismatch {} vs {}",
            self.shape,
            other.shape
        );
        simd::add_assign(&mut self.data, &other.data);
    }

    /// Adds `scale * other` into `self` in place (fused multiply-add).
    pub fn add_scaled_inplace(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(
            self.dims(),
            other.dims(),
            "add_scaled_inplace: shape mismatch {} vs {}",
            self.shape,
            other.shape
        );
        simd::axpy(&mut self.data, &other.data, scale);
    }

    /// Multiplies every element by `value`, in place.
    pub fn scale_inplace(&mut self, value: f32) {
        simd::scale_in_place(&mut self.data, value);
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// A new tensor with every element multiplied by `value`.
    pub fn scale(&self, value: f32) -> Tensor {
        self.map(|a| a * value)
    }

    /// A new tensor with `value` added to every element.
    pub fn add_scalar(&self, value: f32) -> Tensor {
        self.map(|a| a + value)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|a| -a)
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = scratch::take(self.data.len());
        data.extend(self.data.iter().map(|&a| f(a)));
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        self.map(|a| a * a)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Elementwise natural exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    // ------------------------------------------------------------------
    // Per-channel (bias) broadcasts used by the network layers
    // ------------------------------------------------------------------

    /// Adds a length-`C` bias to a `(…, C)` tensor along its **last** axis.
    pub fn add_bias_last(&self, bias: &Tensor) -> Tensor {
        assert_eq!(bias.rank(), 1, "bias must be rank 1");
        let c = bias.len();
        let last = *self.dims().last().expect("add_bias_last on rank-0 tensor");
        assert_eq!(last, c, "bias length {c} does not match last dim {last}");
        let mut out = self.clone();
        for row in out.data.chunks_exact_mut(c) {
            for (x, &b) in row.iter_mut().zip(bias.data.iter()) {
                *x += b;
            }
        }
        out
    }

    /// Adds a length-`C` bias to a `(B, C, L)` tensor along its **middle** axis.
    pub fn add_bias_channel(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "add_bias_channel requires rank 3");
        assert_eq!(bias.rank(), 1, "bias must be rank 1");
        let (b, c, l) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        assert_eq!(
            bias.len(),
            c,
            "bias length {} does not match channels {c}",
            bias.len()
        );
        let mut out = self.clone();
        for bi in 0..b {
            for ci in 0..c {
                let bv = bias.data[ci];
                let start = (bi * c + ci) * l;
                for x in &mut out.data[start..start + l] {
                    *x += bv;
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Norms
    // ------------------------------------------------------------------

    /// Sum of squared elements (squared Frobenius norm).
    pub fn sq_norm(&self) -> f32 {
        simd::sq_sum(&self.data)
    }

    /// Euclidean (Frobenius) norm.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor({}, [", self.shape)?;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.len() > PREVIEW {
            write!(f, ", …")?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn from_vec_checks_len() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.dims(), &[2, 3]);
        assert_eq!(t.at(&[1, 2]), 6.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_panics_on_len_mismatch() {
        Tensor::from_vec(vec![1.0], &[2, 3]);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.at(&[0, 0]), 1.0);
        assert_eq!(i.at(&[1, 2]), 0.0);
        assert_eq!(i.data().iter().sum::<f32>(), 3.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).data(), &[4.0, 2.5, 2.0]);
        assert_eq!(a.neg().data(), &[-1.0, -2.0, -3.0]);
    }

    #[test]
    fn inplace_ops() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        a.add_inplace(&b);
        assert_eq!(a.data(), &[11.0, 22.0]);
        a.add_scaled_inplace(&b, 0.5);
        assert_eq!(a.data(), &[16.0, 32.0]);
        a.scale_inplace(2.0);
        assert_eq!(a.data(), &[32.0, 64.0]);
        a.fill_zero();
        assert_eq!(a.data(), &[0.0, 0.0]);
    }

    #[test]
    fn transpose_rank2() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn transpose12_swaps_inner_axes() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[2, 2, 3]);
        let t = a.transpose12();
        assert_eq!(t.dims(), &[2, 3, 2]);
        for b in 0..2 {
            for i in 0..2 {
                for j in 0..3 {
                    assert_eq!(a.at(&[b, i, j]), t.at(&[b, j, i]));
                }
            }
        }
    }

    #[test]
    fn transpose_is_involution() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32 * 0.5).collect(), &[2, 3]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn bias_broadcasts() {
        let x = Tensor::from_vec(vec![0.0; 12], &[2, 2, 3]);
        let bias_last = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let y = x.add_bias_last(&bias_last);
        assert_eq!(&y.data()[0..3], &[1.0, 2.0, 3.0]);
        assert_eq!(&y.data()[9..12], &[1.0, 2.0, 3.0]);

        let bias_mid = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        let z = x.add_bias_channel(&bias_mid);
        assert_eq!(&z.data()[0..3], &[10.0, 10.0, 10.0]);
        assert_eq!(&z.data()[3..6], &[20.0, 20.0, 20.0]);
    }

    #[test]
    fn norms() {
        let a = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_close(&[a.sq_norm()], &[25.0], 1e-6);
        assert_close(&[a.norm()], &[5.0], 1e-6);
    }

    #[test]
    fn reshape_roundtrip() {
        let a = Tensor::arange(6).reshape(&[2, 3]);
        assert_eq!(a.at(&[1, 0]), 3.0);
        let b = a.reshape(&[6]);
        assert_eq!(b.data(), Tensor::arange(6).data());
    }

    #[test]
    fn map_applies_function() {
        let a = Tensor::from_vec(vec![1.0, 4.0, 9.0], &[3]);
        assert_eq!(a.sqrt().data(), &[1.0, 2.0, 3.0]);
        assert_eq!(a.square().data(), &[1.0, 16.0, 81.0]);
        assert_eq!(a.neg().abs().data(), a.data());
    }
}
