//! Kernel-tier telemetry: dispatch-arm counters and the pool queue
//! depth, exported as `static` cells so the hot kernels stay free of any
//! registry indirection.
//!
//! `cae-tensor` sits below `cae-obs`'s typical handle pattern: kernels
//! are called orders of magnitude more often than serving-tier methods,
//! and threading a registry handle through every matmul would grow every
//! call signature. Instead the cells live here as `static`s behind one
//! tier [`ENABLED`] flag (same one-relaxed-load discipline as a disabled
//! registry), and [`install`] links them into a [`MetricsRegistry`] —
//! which then reads them at snapshot time and drives [`ENABLED`] through
//! its own enable/disable transitions.

use cae_obs::MetricsRegistry;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Tier flag: recording happens only while set. [`install`] ties it to
/// the registry's enabled state; it stays `false` (all sites one relaxed
/// load) until then.
pub static ENABLED: AtomicBool = AtomicBool::new(false);

/// Contractions routed to the packed AVX2 GEMM.
pub static GEMM_PACKED_DISPATCHES: AtomicU64 = AtomicU64::new(0);

/// Contractions kept on the portable scalar kernels (SIMD inactive or
/// below the madd threshold). Only the x86_64 dispatch point counts;
/// other architectures have a single arm and record nothing.
pub static GEMM_SCALAR_DISPATCHES: AtomicU64 = AtomicU64::new(0);

/// Tasks of the most recently submitted pool job (last-write-wins;
/// returns to 0 when the job drains).
pub static POOL_QUEUE_DEPTH: AtomicU64 = AtomicU64::new(0);

/// Counts one routing decision of the GEMM dispatch point.
#[cfg(target_arch = "x86_64")]
#[inline]
pub(crate) fn gemm_dispatch(packed: bool) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    if packed {
        GEMM_PACKED_DISPATCHES.fetch_add(1, Ordering::Relaxed);
    } else {
        GEMM_SCALAR_DISPATCHES.fetch_add(1, Ordering::Relaxed);
    }
}

/// Publishes the pool's outstanding-task count.
#[inline]
pub(crate) fn set_pool_queue_depth(tasks: usize) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    POOL_QUEUE_DEPTH.store(tasks as u64, Ordering::Relaxed);
}

/// Exports the kernel-tier cells into `registry` under `tensor_*` names
/// and ties [`ENABLED`] to the registry's enable/disable transitions.
pub fn install(registry: &MetricsRegistry) {
    registry.link_counter(
        "tensor_gemm_packed_dispatches_total",
        &GEMM_PACKED_DISPATCHES,
    );
    registry.link_counter(
        "tensor_gemm_scalar_dispatches_total",
        &GEMM_SCALAR_DISPATCHES,
    );
    registry.link_gauge("tensor_pool_queue_depth", &POOL_QUEUE_DEPTH);
    registry.link_flag(&ENABLED);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_links_cells_and_flag() {
        let registry = MetricsRegistry::new();
        install(&registry);
        assert!(ENABLED.load(Ordering::Acquire), "flag follows install");

        set_pool_queue_depth(5);
        let snapshot = registry.snapshot();
        let depth = snapshot
            .gauges
            .iter()
            .find(|(name, _)| *name == "tensor_pool_queue_depth")
            .expect("linked gauge exported");
        assert_eq!(depth.1, 5.0);
        assert!(snapshot
            .counters
            .iter()
            .any(|(name, _)| *name == "tensor_gemm_packed_dispatches_total"));

        registry.disable();
        assert!(!ENABLED.load(Ordering::Acquire), "flag follows disable");
        set_pool_queue_depth(9);
        assert_eq!(
            POOL_QUEUE_DEPTH.load(Ordering::Relaxed),
            5,
            "disabled tier records nothing"
        );
        // Leave the tier armed again for other tests in this process.
        registry.enable();
        set_pool_queue_depth(0);
    }
}
