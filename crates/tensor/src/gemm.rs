//! Packed, register-blocked f32 GEMM core (AVX2 + FMA).
//!
//! Every dense contraction in the crate — the three 2-D matmul variants,
//! the three batched variants, and the implicit-im2col convolution
//! kernels — reduces to one primitive:
//!
//! ```text
//! C (m × n) += A (m × depth) · B (depth × n)
//! ```
//!
//! where A and B are *views* ([`APanelSrc`] / [`BPanelSrc`]) that know how
//! to copy a few contiguous elements of a given depth slice, so transposed
//! operands, padded convolution windows, and batch-concatenated gradients
//! all feed the same microkernel without materializing anything.
//!
//! # Anatomy
//!
//! * **Packing.** B is repacked into `depth`-major column panels of
//!   [`NR`] = 16 floats (one panel per 16 output columns, zero-padded at
//!   the right edge); A is repacked per 6-row block into `depth`-major
//!   row panels of [`MR`] = 6 floats. Both packings come from the
//!   thread-local scratch pool ([`crate::scratch`]), so steady-state GEMMs
//!   allocate nothing. The microkernel therefore streams two perfectly
//!   contiguous buffers regardless of the logical layout of the operands.
//! * **Microkernel.** A 6×16 register tile: 12 `ymm` accumulators, two
//!   B loads and six A broadcasts per depth step, all combined with fused
//!   multiply-adds — 96 madds per step, the AVX2 port-saturating shape.
//!   Depth is unrolled four deep. Edge tiles (m % 6, n % 16) run the same
//!   kernel into a stack tile that is then added to the live part of C.
//! * **Parallelism.** Row blocks are independent; large products fan the
//!   block list out over the persistent worker pool
//!   ([`par::for_each_index`]), each worker packing its own A panels.
//!   Block boundaries are fixed by [`MR`] — **not** by the worker count —
//!   and every block accumulates depth in the same order, so results are
//!   bit-exact across thread counts.
//! * **Depth blocking.** Depths beyond [`KC`] are processed in slabs so
//!   the packed B block stays cache-resident; C accumulates across slabs
//!   in a fixed order (bit-exact by construction).
//!
//! This module is only compiled on x86_64 and only *runs* when
//! [`crate::simd::active`] reports AVX2+FMA; the portable fallbacks in
//! [`crate::matmul`] and [`crate::conv`] remain the other dispatch arm.

use crate::par::SyncMutPtr;
use crate::{par, scratch, simd};
use core::arch::x86_64::*;

/// Microkernel tile height (rows of A per block).
pub(crate) const MR: usize = 6;

/// Microkernel tile width (columns of B per panel, two `ymm` registers).
pub(crate) const NR: usize = 16;

/// Depth slab: at most this many contraction steps are packed at a time.
/// 512 keeps a full-width packed B block (`n_round × KC` floats) within
/// a few hundred KiB — L2-resident on anything that has AVX2.
const KC: usize = 512;

/// Minimum madd count before the packed path beats the plain scalar
/// loops; below it, packing overhead dominates and callers should keep
/// the portable kernel.
const MIN_MADDS: usize = 1 << 10;

/// True when callers should route a contraction of `madds` multiply-adds
/// through this module. This is the dispatch decision the kernel-tier
/// telemetry counts (`crate::obs`).
#[inline]
pub(crate) fn enabled(madds: usize) -> bool {
    let packed = simd::avx2_active() && madds >= MIN_MADDS;
    crate::obs::gemm_dispatch(packed);
    packed
}

// ---------------------------------------------------------------------
// Operand views
// ---------------------------------------------------------------------

/// Read view of the A operand.
///
/// `pack_block` packs rows `i0 .. i0+h` over depths `k0 .. k0+kc` into
/// `dst` (length `MR*kc`) in **row-major** order — row `r` occupies
/// `dst[r*kc ..][..kc]` — zero-filling rows `h .. MR`. Row-major panels
/// keep the packing stage all contiguous copies; the microkernel
/// broadcasts from the six row streams directly.
pub(crate) trait APanelSrc: Sync {
    fn pack_block(&self, k0: usize, kc: usize, i0: usize, h: usize, dst: &mut [f32]);
}

/// Read view of the B operand: fills `dst[j] = b[d][j0 + j]` for a depth
/// slice `d` and column panel starting at `j0`.
pub(crate) trait BPanelSrc: Sync {
    fn fill(&self, d: usize, j0: usize, dst: &mut [f32]);

    /// Packs columns `j0 .. j0+w` over depths `k0 .. k0+kc` into `dst`
    /// (length `kc*NR`, depth-major), zero-padding columns `w .. NR`.
    fn pack_panel(&self, k0: usize, kc: usize, j0: usize, w: usize, dst: &mut [f32]) {
        for d in 0..kc {
            let s = &mut dst[d * NR..][..NR];
            self.fill(k0 + d, j0, &mut s[..w]);
            s[w..].fill(0.0);
        }
    }
}

/// Row-major A: element `(i, d)` at `data[i*ld + d]`.
pub(crate) struct ARows<'a> {
    pub data: &'a [f32],
    pub ld: usize,
}

impl APanelSrc for ARows<'_> {
    /// Pure memcpy packing: one contiguous row copy per block row.
    fn pack_block(&self, k0: usize, kc: usize, i0: usize, h: usize, dst: &mut [f32]) {
        if h < MR {
            dst[h * kc..MR * kc].fill(0.0);
        }
        for r in 0..h {
            dst[r * kc..][..kc].copy_from_slice(&self.data[(i0 + r) * self.ld + k0..][..kc]);
        }
    }
}

/// Transposed A (the `tn` variants): the operand is stored `(depth, m)`
/// row-major, so a depth slice is contiguous.
pub(crate) struct ACols<'a> {
    pub data: &'a [f32],
    pub ld: usize,
}

impl APanelSrc for ACols<'_> {
    fn pack_block(&self, k0: usize, kc: usize, i0: usize, h: usize, dst: &mut [f32]) {
        if h < MR {
            dst[h * kc..MR * kc].fill(0.0);
        }
        for r in 0..h {
            let row = &mut dst[r * kc..][..kc];
            for (d, v) in row.iter_mut().enumerate() {
                *v = self.data[(k0 + d) * self.ld + i0 + r];
            }
        }
    }
}

/// Batch-concatenated A for the kernel gradient: logical row `i` is the
/// concatenation over batch elements of `data[(bi*rows + i)*l ..][..l]`,
/// i.e. element `(i, d)` with `d = bi·l + t` reads `grad_out[bi][i][t]`.
pub(crate) struct ABatchRows<'a> {
    pub data: &'a [f32],
    pub rows: usize,
    pub l: usize,
}

impl APanelSrc for ABatchRows<'_> {
    /// Copies per-batch row segments — contiguous both sides, split only
    /// where a depth slab crosses a batch boundary.
    fn pack_block(&self, k0: usize, kc: usize, i0: usize, h: usize, dst: &mut [f32]) {
        if h < MR {
            dst[h * kc..MR * kc].fill(0.0);
        }
        for r in 0..h {
            let row = &mut dst[r * kc..][..kc];
            let mut d = 0;
            while d < kc {
                let (bi, t) = ((k0 + d) / self.l, (k0 + d) % self.l);
                let take = (self.l - t).min(kc - d);
                row[d..d + take]
                    .copy_from_slice(&self.data[(bi * self.rows + i0 + r) * self.l + t..][..take]);
                d += take;
            }
        }
    }
}

/// Row-major B: depth slice `d` is `data[d*ld ..][..n]`.
pub(crate) struct BRows<'a> {
    pub data: &'a [f32],
    pub ld: usize,
}

impl BPanelSrc for BRows<'_> {
    #[inline]
    fn fill(&self, d: usize, j0: usize, dst: &mut [f32]) {
        let row = &self.data[d * self.ld + j0..][..dst.len()];
        dst.copy_from_slice(row);
    }
}

/// Transposed B (the `nt` variants): the operand is stored `(n, depth)`
/// row-major, so element `(d, j)` gathers `data[j*ld + d]`.
pub(crate) struct BColsT<'a> {
    pub data: &'a [f32],
    pub ld: usize,
}

impl BPanelSrc for BColsT<'_> {
    #[inline]
    fn fill(&self, d: usize, j0: usize, dst: &mut [f32]) {
        for (j, v) in dst.iter_mut().enumerate() {
            *v = self.data[(j0 + j) * self.ld + d];
        }
    }

    /// Row-major traversal of the stored `(n, depth)` operand: contiguous
    /// reads, stride-`NR` writes.
    fn pack_panel(&self, k0: usize, kc: usize, j0: usize, w: usize, dst: &mut [f32]) {
        if w < NR {
            dst[..kc * NR].fill(0.0);
        }
        for j in 0..w {
            let row = &self.data[(j0 + j) * self.ld + k0..][..kc];
            for (d, &v) in row.iter().enumerate() {
                dst[d * NR + j] = v;
            }
        }
    }
}

/// Implicit-im2col B for the convolution forward/input-grad: depth index
/// `p = ci·k + j` selects the window `pad[ci][j .. j+l]` of the padded
/// input (rows of stride `l + k − 1`), which is contiguous in the column
/// (time) direction.
pub(crate) struct BWindows<'a> {
    pub pad: &'a [f32],
    pub stride: usize,
    pub k: usize,
}

impl BPanelSrc for BWindows<'_> {
    #[inline]
    fn fill(&self, d: usize, j0: usize, dst: &mut [f32]) {
        let start = (d / self.k) * self.stride + (d % self.k) + j0;
        dst.copy_from_slice(&self.pad[start..][..dst.len()]);
    }
}

/// Batch-concatenated im2col B for the kernel gradient: depth
/// `d = bi·l + t`, column `j = ci·k + jj`, element
/// `xpad[bi][ci][t + jj]` (`xpad` rows carry the forward padding, so the
/// tap offset is already folded in).
pub(crate) struct BBatchWindows<'a> {
    pub pad: &'a [f32],
    pub stride: usize,
    pub cin: usize,
    pub k: usize,
    pub l: usize,
}

impl BPanelSrc for BBatchWindows<'_> {
    /// Segmented copies: consecutive `j` advance the tap `jj`
    /// contiguously until a channel boundary, so the panel row splits
    /// into at most `⌈NR/k⌉ + 1` slice copies instead of a divmod per
    /// element.
    fn fill(&self, d: usize, j0: usize, dst: &mut [f32]) {
        let (bi, t) = (d / self.l, d % self.l);
        let mut j = 0;
        while j < dst.len() {
            let (ci, jj) = ((j0 + j) / self.k, (j0 + j) % self.k);
            let take = (self.k - jj).min(dst.len() - j);
            let src = (bi * self.cin + ci) * self.stride + jj + t;
            dst[j..j + take].copy_from_slice(&self.pad[src..src + take]);
            j += take;
        }
    }
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

/// `out (m × n) = A · B` over `depth` contraction steps.
///
/// The first depth slab overwrites `out` (no read of the destination);
/// further slabs accumulate in a fixed order.
pub(crate) fn gemm<A: APanelSrc, B: BPanelSrc>(
    m: usize,
    n: usize,
    depth: usize,
    a: &A,
    b: &B,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || depth == 0 {
        return;
    }
    let npanels = n.div_ceil(NR);
    let nblocks = m.div_ceil(MR);
    // Panels are fully packed before the microkernel reads them, so the
    // buffers can start with unspecified contents (no memset).
    let mut pb = scratch::take_full(npanels * NR * depth.min(KC));
    let base = SyncMutPtr(out.as_mut_ptr());

    let mut k0 = 0;
    while k0 < depth {
        let kc = KC.min(depth - k0);
        // Pack B once per depth slab, shared read-only by every block.
        for jp in 0..npanels {
            let j0 = jp * NR;
            let w = NR.min(n - j0);
            b.pack_panel(k0, kc, j0, w, &mut pb[jp * kc * NR..][..kc * NR]);
        }

        let run_block = |ib: usize| {
            let i0 = ib * MR;
            let h = MR.min(m - i0);
            let mut pa = scratch::take_full(kc * MR);
            a.pack_block(k0, kc, i0, h, &mut pa);
            for jp in 0..npanels {
                let j0 = jp * NR;
                let w = NR.min(n - j0);
                // SAFETY: `i0 < m` and `j0 < n`, so the offset stays
                // inside `out` (length `m*n`, asserted above).
                let c = unsafe { base.get().add(i0 * n + j0) };
                // SAFETY: `enabled()` gated dispatch on runtime AVX2+FMA
                // detection; the packed panels are `kc*MR` / `kc*NR` long
                // and the C tile writes stay inside rows i0..i0+h,
                // columns j0..j0+w of `out`. The first depth slab stores,
                // later slabs accumulate.
                unsafe {
                    microkernel(
                        pa.as_ptr(),
                        pb.as_ptr().add(jp * kc * NR),
                        kc,
                        c,
                        n,
                        h,
                        w,
                        k0 > 0,
                    );
                }
            }
            scratch::recycle(pa);
        };

        // Fan row blocks out only when the output clears the pool
        // threshold; block geometry is identical either way.
        if par::threads() > 1 && m * n >= par::PAR_THRESHOLD && nblocks > 1 {
            par::for_each_index(nblocks, run_block);
        } else {
            for ib in 0..nblocks {
                run_block(ib);
            }
        }
        k0 += kc;
    }
    scratch::recycle(pb);
}

// ---------------------------------------------------------------------
// Microkernel
// ---------------------------------------------------------------------

/// Full or edge 6×16 tile over `kc` depth steps. `accumulate` selects
/// `C += PA·PB` (later depth slabs) versus a plain store (the first —
/// and usually only — slab, saving a full read of C).
///
/// # Safety
///
/// The caller must have verified AVX2+FMA at runtime and must pass
/// packed panels of at least `MR*kc` (`pa`) and `NR*kc` (`pb`) floats,
/// plus a C pointer with `h` rows of stride `ldc` and `w` writable
/// columns (`h ≤ MR`, `w ≤ NR`, `w ≤ ldc`).
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn microkernel(
    pa: *const f32,
    pb: *const f32,
    kc: usize,
    c: *mut f32,
    ldc: usize,
    h: usize,
    w: usize,
    accumulate: bool,
) {
    debug_assert!(
        0 < h && h <= MR && 0 < w && w <= NR && w <= ldc,
        "tile {h}x{w} (ldc {ldc}) outside the {MR}x{NR} microkernel shape"
    );
    if h == MR && w == NR {
        // SAFETY: the full tile writes exactly MR rows × NR columns,
        // which the caller contract declares writable at stride `ldc`.
        unsafe { kernel_6x16(pa, pb, kc, c, ldc, accumulate) };
    } else {
        // Edge tile: run the full kernel into a stack tile, then fold the
        // live `h × w` corner into C.
        let mut tile = [0.0f32; MR * NR];
        // SAFETY: the stack tile is exactly MR×NR at stride NR — the
        // kernel's full-tile shape; panels per the caller contract.
        unsafe { kernel_6x16(pa, pb, kc, tile.as_mut_ptr(), NR, false) };
        for r in 0..h {
            // SAFETY: rows `r < h` at stride `ldc` with `w` columns are
            // writable per the caller contract.
            unsafe {
                let crow = c.add(r * ldc);
                for j in 0..w {
                    if accumulate {
                        *crow.add(j) += tile[r * NR + j];
                    } else {
                        *crow.add(j) = tile[r * NR + j];
                    }
                }
            }
        }
    }
}

/// The 6×16 register tile. 12 accumulators stay in `ymm` registers for
/// the whole depth loop; every step issues 2 B loads, 6 A broadcasts
/// (one per packed row stream) and 12 FMAs — the FMA-port-bound shape on
/// AVX2. The depth loop is unrolled four deep with indexed addressing so
/// the pointers advance once per group.
///
/// # Safety
///
/// AVX2+FMA must be runtime-verified; `pa` must hold `MR*kc` floats
/// (row-major row streams), `pb` must hold `kc*NR` floats (depth-major
/// panel), and `c` must have MR full rows of NR writable floats at
/// stride `ldc`.
#[target_feature(enable = "avx2,fma")]
unsafe fn kernel_6x16(
    pa: *const f32,
    mut pb: *const f32,
    kc: usize,
    c: *mut f32,
    ldc: usize,
    accumulate: bool,
) {
    let mut c00 = _mm256_setzero_ps();
    let mut c01 = _mm256_setzero_ps();
    let mut c10 = _mm256_setzero_ps();
    let mut c11 = _mm256_setzero_ps();
    let mut c20 = _mm256_setzero_ps();
    let mut c21 = _mm256_setzero_ps();
    let mut c30 = _mm256_setzero_ps();
    let mut c31 = _mm256_setzero_ps();
    let mut c40 = _mm256_setzero_ps();
    let mut c41 = _mm256_setzero_ps();
    let mut c50 = _mm256_setzero_ps();
    let mut c51 = _mm256_setzero_ps();

    // One pointer per packed A row stream; each advances by one float
    // per depth step.
    // SAFETY: `pa` holds `MR*kc` floats (caller contract), so the six
    // row-stream bases at `r*kc` are all in bounds.
    let (mut pa0, mut pa1, mut pa2, mut pa3, mut pa4, mut pa5) = unsafe {
        (
            pa,
            pa.add(kc),
            pa.add(2 * kc),
            pa.add(3 * kc),
            pa.add(4 * kc),
            pa.add(5 * kc),
        )
    };

    macro_rules! step {
        ($u:expr) => {
            // SAFETY: the loops below keep `d + $u < kc`, so the B panel
            // row at `pb + $u*NR` has NR in-bounds floats and each A row
            // stream still has its `$u`-th float.
            let (b0, b1, a0, a1, a2, a3, a4, a5) = unsafe {
                (
                    _mm256_loadu_ps(pb.add($u * NR)),
                    _mm256_loadu_ps(pb.add($u * NR + 8)),
                    _mm256_broadcast_ss(&*pa0.add($u)),
                    _mm256_broadcast_ss(&*pa1.add($u)),
                    _mm256_broadcast_ss(&*pa2.add($u)),
                    _mm256_broadcast_ss(&*pa3.add($u)),
                    _mm256_broadcast_ss(&*pa4.add($u)),
                    _mm256_broadcast_ss(&*pa5.add($u)),
                )
            };
            c00 = _mm256_fmadd_ps(a0, b0, c00);
            c01 = _mm256_fmadd_ps(a0, b1, c01);
            c10 = _mm256_fmadd_ps(a1, b0, c10);
            c11 = _mm256_fmadd_ps(a1, b1, c11);
            c20 = _mm256_fmadd_ps(a2, b0, c20);
            c21 = _mm256_fmadd_ps(a2, b1, c21);
            c30 = _mm256_fmadd_ps(a3, b0, c30);
            c31 = _mm256_fmadd_ps(a3, b1, c31);
            c40 = _mm256_fmadd_ps(a4, b0, c40);
            c41 = _mm256_fmadd_ps(a4, b1, c41);
            c50 = _mm256_fmadd_ps(a5, b0, c50);
            c51 = _mm256_fmadd_ps(a5, b1, c51);
        };
    }
    macro_rules! advance {
        ($by:expr) => {
            // SAFETY: the depth loops advance each stream at most to one
            // past its final element — a valid one-past-the-end pointer.
            unsafe {
                pa0 = pa0.add($by);
                pa1 = pa1.add($by);
                pa2 = pa2.add($by);
                pa3 = pa3.add($by);
                pa4 = pa4.add($by);
                pa5 = pa5.add($by);
                pb = pb.add($by * NR);
            }
        };
    }

    let mut d = 0;
    while d + 4 <= kc {
        step!(0);
        step!(1);
        step!(2);
        step!(3);
        advance!(4);
        d += 4;
    }
    while d < kc {
        step!(0);
        advance!(1);
        d += 1;
    }

    macro_rules! store_row {
        ($r:expr, $v0:expr, $v1:expr) => {
            // SAFETY: row `$r < MR` of C has NR writable floats at
            // stride `ldc` (full-tile caller contract).
            unsafe {
                let crow = c.add($r * ldc);
                if accumulate {
                    _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), $v0));
                    _mm256_storeu_ps(
                        crow.add(8),
                        _mm256_add_ps(_mm256_loadu_ps(crow.add(8)), $v1),
                    );
                } else {
                    _mm256_storeu_ps(crow, $v0);
                    _mm256_storeu_ps(crow.add(8), $v1);
                }
            }
        };
    }
    store_row!(0, c00, c01);
    store_row!(1, c10, c11);
    store_row!(2, c20, c21);
    store_row!(3, c30, c31);
    store_row!(4, c40, c41);
    store_row!(5, c50, c51);
}

// ---------------------------------------------------------------------
// Contraction entry points
// ---------------------------------------------------------------------

/// `out (m×n) += A (m×k) · B (k×n)`, both row-major.
pub(crate) fn matmul_nn(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm(
        m,
        n,
        k,
        &ARows { data: a, ld: k },
        &BRows { data: b, ld: n },
        out,
    );
}

/// `out (m×n) += Aᵀ · B` with `A: (k, m)`, `B: (k, n)`.
pub(crate) fn matmul_tn(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    gemm(
        m,
        n,
        k,
        &ACols { data: a, ld: m },
        &BRows { data: b, ld: n },
        out,
    );
}

/// `out (m×n) += A · Bᵀ` with `A: (m, k)`, `B: (n, k)`.
pub(crate) fn matmul_nt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm(
        m,
        n,
        k,
        &ARows { data: a, ld: k },
        &BColsT { data: b, ld: k },
        out,
    );
}

/// Dimensions of one convolution GEMM (shared by forward and the
/// adjoints; `rows_in`/`rows_out` swap roles for the input gradient).
pub(crate) struct ConvShape {
    pub batches: usize,
    pub rows_in: usize,
    pub rows_out: usize,
    pub k: usize,
    pub l: usize,
    pub pl: usize,
}

impl ConvShape {
    #[inline]
    fn stride(&self) -> usize {
        self.l + self.k - 1
    }
}

/// Batched implicit-im2col convolution forward (also the input gradient,
/// with a reordered weight matrix and mirrored padding):
/// `out[bi] (rows_out × l) = W (rows_out × rows_in·k) · X̃[bi]`.
///
/// The weight matrix is packed **once** and shared across the batch;
/// each batch element pads its input rows and packs its own B panels in
/// worker-local scratch.
pub(crate) fn conv_batch(x: &[f32], wmat: &[f32], out: &mut [f32], s: &ConvShape) {
    let depth = s.rows_in * s.k;
    let (l, stride) = (s.l, s.stride());
    debug_assert_eq!(out.len(), s.batches * s.rows_out * l);
    debug_assert_eq!(wmat.len(), s.rows_out * depth);
    if l == 0 || out.is_empty() {
        return;
    }

    // Pack all row blocks of W up front: block ib holds depth-major
    // MR-wide slices of rows ib*MR ..
    let nblocks = s.rows_out.div_ceil(MR);
    let a = ARows {
        data: wmat,
        ld: depth,
    };
    // Fully packed before use — unspecified initial contents are fine.
    let mut pw = scratch::take_full(nblocks * depth * MR);
    for ib in 0..nblocks {
        let i0 = ib * MR;
        let h = MR.min(s.rows_out - i0);
        a.pack_block(0, depth, i0, h, &mut pw[ib * depth * MR..][..depth * MR]);
    }

    let npanels = l.div_ceil(NR);
    let pw_ref = &pw;
    par::for_each_chunk(out, s.rows_out * l, |bi, y| {
        let src = &x[bi * s.rows_in * l..(bi + 1) * s.rows_in * l];
        let mut pb;
        if npanels == 1 {
            // Single-panel fast path (the CAE serving/training shape:
            // window length ≤ NR). Each depth row is built directly from
            // the unpadded source — one contiguous copy for the valid
            // span, explicit zero fills for the padding borders — so the
            // intermediate padded buffer, its memset, its row copies and
            // the whole-panel memset are all skipped. Contents are
            // identical to the padded path below, so results stay
            // bit-exact across both.
            pb = scratch::take_full(depth * NR);
            for ci in 0..s.rows_in {
                let row = &src[ci * l..(ci + 1) * l];
                for j in 0..s.k {
                    // Panel column t reads source index t + j − pl.
                    let off = j as isize - s.pl as isize;
                    let lead = (-off).clamp(0, l as isize) as usize;
                    let te = (l as isize - off).clamp(lead as isize, l as isize) as usize;
                    let dst = &mut pb[(ci * s.k + j) * NR..][..NR];
                    dst[..lead].fill(0.0);
                    if te > lead {
                        dst[lead..te].copy_from_slice(
                            &row[(lead as isize + off) as usize..(te as isize + off) as usize],
                        );
                    }
                    dst[te..].fill(0.0);
                }
            }
        } else {
            // Zero-pad this batch element's input rows so every tap shift
            // is a contiguous in-bounds window.
            let mut pad = scratch::take_zeroed(s.rows_in * stride);
            for r in 0..s.rows_in {
                pad[r * stride + s.pl..r * stride + s.pl + l]
                    .copy_from_slice(&src[r * l..(r + 1) * l]);
            }
            let bsrc = BWindows {
                pad: &pad,
                stride,
                k: s.k,
            };
            pb = scratch::take_full(npanels * NR * depth);
            for jp in 0..npanels {
                let j0 = jp * NR;
                let w = NR.min(l - j0);
                bsrc.pack_panel(0, depth, j0, w, &mut pb[jp * depth * NR..][..depth * NR]);
            }
            scratch::recycle(pad);
        }
        for ib in 0..nblocks {
            let i0 = ib * MR;
            let h = MR.min(s.rows_out - i0);
            for jp in 0..npanels {
                let j0 = jp * NR;
                let w = NR.min(l - j0);
                // SAFETY: same contract as in `gemm` — panels are fully
                // packed and the tile stays inside y's h×w corner.
                unsafe {
                    microkernel(
                        pw_ref.as_ptr().add(ib * depth * MR),
                        pb.as_ptr().add(jp * depth * NR),
                        depth,
                        y.as_mut_ptr().add(i0 * l + j0),
                        l,
                        h,
                        w,
                        false,
                    );
                }
            }
        }
        scratch::recycle(pb);
    });
    scratch::recycle(pw);
}

/// Kernel gradient as one batch-fused GEMM:
/// `gw (C_out × C_in·k) = Σ_{bi,t} grad_out[bi][·][t] · X̃[bi][·][t]ᵀ`,
/// i.e. an `nt`-shaped product whose depth is the whole batch-time extent
/// `B·L` — the deepest (and best-amortized) contraction in the backend.
pub(crate) fn conv_kernel_grad(x: &[f32], g: &[f32], gw: &mut [f32], s: &ConvShape) {
    let (l, stride) = (s.l, s.stride());
    debug_assert_eq!(gw.len(), s.rows_out * s.rows_in * s.k);
    if l == 0 || s.batches == 0 {
        return;
    }
    // Pad every batch element's input rows once (forward-side padding).
    let mut pad = scratch::take_zeroed(s.batches * s.rows_in * stride);
    for r in 0..s.batches * s.rows_in {
        pad[r * stride + s.pl..r * stride + s.pl + l].copy_from_slice(&x[r * l..(r + 1) * l]);
    }
    gemm(
        s.rows_out,
        s.rows_in * s.k,
        s.batches * l,
        &ABatchRows {
            data: g,
            rows: s.rows_out,
            l,
        },
        &BBatchWindows {
            pad: &pad,
            stride,
            cin: s.rows_in,
            k: s.k,
            l,
        },
        gw,
    );
    scratch::recycle(pad);
}
