//! Shape bookkeeping for row-major tensors.

use std::fmt;

/// The dimensions of a [`crate::Tensor`], stored outermost-first.
///
/// A `Shape` is a thin wrapper over a `Vec<usize>` adding the arithmetic
/// every kernel needs (element counts, row-major strides, flat indexing).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension sizes.
    ///
    /// Zero-sized dimensions are permitted (the tensor is then empty).
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The dimension sizes, outermost first.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions (the tensor's rank).
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Whether the shape contains zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of dimension `axis`. Panics if `axis >= rank`.
    #[inline]
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major strides (in elements) for each dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-index. Panics on out-of-range indices.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.rank(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.rank()
        );
        let mut off = 0usize;
        let mut stride = 1usize;
        for axis in (0..self.rank()).rev() {
            let i = index[axis];
            let d = self.0[axis];
            assert!(
                i < d,
                "index {i} out of range for axis {axis} with size {d}"
            );
            off += i * stride;
            stride *= d;
        }
        off
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).len(), 24);
        assert_eq!(Shape::new(&[5]).len(), 5);
        assert_eq!(Shape::new(&[]).len(), 1); // rank-0 scalar
    }

    #[test]
    fn zero_dim_means_empty() {
        let s = Shape::new(&[2, 0, 4]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[7]).strides(), vec![1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[0, 1, 1]), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn offset_panics_out_of_range() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "index rank")]
    fn offset_panics_on_rank_mismatch() {
        Shape::new(&[2, 2]).offset(&[0]);
    }
}
