//! Seeded random tensor constructors.
//!
//! Everything in the reproduction is deterministic given a seed: data
//! generation, weight initialization, connection-mask sampling and the
//! random hyperparameter search all thread `rand` RNGs explicitly.

use crate::Tensor;
use rand::distributions::Distribution;
use rand::Rng;

impl Tensor {
    /// Uniform samples in `[lo, hi)`.
    pub fn rand_uniform<R: Rng + ?Sized>(dims: &[usize], lo: f32, hi: f32, rng: &mut R) -> Tensor {
        assert!(lo <= hi, "rand_uniform: lo {lo} > hi {hi}");
        let n: usize = dims.iter().product();
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor::from_vec(data, dims)
    }

    /// Gaussian samples with the given mean and standard deviation,
    /// generated via Box–Muller (avoids a `rand_distr` dependency).
    pub fn rand_normal<R: Rng + ?Sized>(
        dims: &[usize],
        mean: f32,
        std: f32,
        rng: &mut R,
    ) -> Tensor {
        let n: usize = dims.iter().product();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let (z0, z1) = box_muller(rng);
            data.push(mean + std * z0);
            if data.len() < n {
                data.push(mean + std * z1);
            }
        }
        Tensor::from_vec(data, dims)
    }

    /// Glorot/Xavier uniform initialization for a parameter with the given
    /// fan-in and fan-out: `U(−a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    pub fn xavier_uniform<R: Rng + ?Sized>(
        dims: &[usize],
        fan_in: usize,
        fan_out: usize,
        rng: &mut R,
    ) -> Tensor {
        let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::rand_uniform(dims, -a, a, rng)
    }

    /// He/Kaiming normal initialization: `N(0, sqrt(2 / fan_in))`.
    pub fn he_normal<R: Rng + ?Sized>(dims: &[usize], fan_in: usize, rng: &mut R) -> Tensor {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        Tensor::rand_normal(dims, 0.0, std, rng)
    }

    /// Bernoulli 0/1 mask where each entry is 1 with probability `keep`.
    ///
    /// Used for the random connection removal of AE-Ensemble (20% of the
    /// connections dropped, Section 4.1.2) and for selecting the fraction
    /// `β` of parameters to transfer between basic models (Figure 9).
    pub fn bernoulli_mask<R: Rng + ?Sized>(dims: &[usize], keep: f64, rng: &mut R) -> Tensor {
        assert!(
            (0.0..=1.0).contains(&keep),
            "keep probability {keep} outside [0, 1]"
        );
        let n: usize = dims.iter().product();
        let data = (0..n)
            .map(|_| if rng.gen_bool(keep) { 1.0 } else { 0.0 })
            .collect();
        Tensor::from_vec(data, dims)
    }
}

/// One Box–Muller draw producing two independent standard normals.
fn box_muller<R: Rng + ?Sized>(rng: &mut R) -> (f32, f32) {
    let u1: f32 = rand::distributions::Open01.sample(rng);
    let u2: f32 = rng.gen_range(0.0f32..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f32::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use crate::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::rand_uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.data().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Tensor::rand_normal(&[20_000], 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t.map(|v| (v - mean) * (v - mean)).mean();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn same_seed_same_tensor() {
        let a = Tensor::rand_normal(&[64], 0.0, 1.0, &mut StdRng::seed_from_u64(7));
        let b = Tensor::rand_normal(&[64], 0.0, 1.0, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn bernoulli_mask_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Tensor::bernoulli_mask(&[10_000], 0.8, &mut rng);
        let ones = m.sum();
        assert!(m.data().iter().all(|&v| v == 0.0 || v == 1.0));
        assert!(
            (ones / 10_000.0 - 0.8).abs() < 0.02,
            "keep rate {}",
            ones / 10_000.0
        );
    }

    #[test]
    fn xavier_scale_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(4);
        let wide = Tensor::xavier_uniform(&[1000], 1000, 1000, &mut rng);
        let bound = (6.0f32 / 2000.0).sqrt();
        assert!(wide.data().iter().all(|&v| v.abs() <= bound));
    }
}
