//! Property-based tests of tensor algebra identities, plus the
//! cross-dispatch contract: every GEMM/conv entry point must produce the
//! same result (≤1e-4 relative tolerance) on the SIMD and forced-scalar
//! paths.

use cae_tensor::{simd, Padding, Tensor};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Strategy producing a tensor of the given shape with bounded values.
fn tensor_strategy(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = dims.iter().product();
    proptest::collection::vec(-10.0f32..10.0, n).prop_map(move |data| Tensor::from_vec(data, &dims))
}

/// Strategy with a tighter value range for cross-path comparisons, so
/// accumulated rounding stays far inside the 1e-4 relative tolerance
/// even for deep contractions.
fn small_tensor_strategy(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = dims.iter().product();
    proptest::collection::vec(-2.0f32..2.0, n).prop_map(move |data| Tensor::from_vec(data, &dims))
}

/// The force-scalar override is process-global; comparisons serialize on
/// this gate so a concurrent test cannot flip the path mid-comparison.
fn simd_gate() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .expect("simd gate poisoned")
}

/// Runs `f` once on the forced-scalar path and once on the default
/// (SIMD where available) path, returning `(scalar, dispatched)`.
fn on_both_paths(f: impl Fn() -> Tensor) -> (Tensor, Tensor) {
    let _gate = simd_gate();
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            simd::set_force_scalar(false);
        }
    }
    let _reset = Reset;
    simd::set_force_scalar(true);
    let scalar = f();
    simd::set_force_scalar(false);
    (scalar, f())
}

/// Elementwise `|a − b| ≤ tol · max(1, |a|, |b|)`.
fn assert_rel_close(a: &[f32], b: &[f32], tol: f32) {
    assert_eq!(a.len(), b.len(), "length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        let denom = x.abs().max(y.abs()).max(1.0);
        assert!(
            (x - y).abs() <= tol * denom,
            "paths differ at index {i}: {x} vs {y} (tol {tol})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(
        (a, b) in (1usize..5, 1usize..5).prop_flat_map(|(m, n)| {
            (tensor_strategy(vec![m, n]), tensor_strategy(vec![m, n]))
        })
    ) {
        let lhs = a.add(&b);
        let rhs = b.add(&a);
        cae_tensor::assert_close(lhs.data(), rhs.data(), 1e-5);
    }

    #[test]
    fn sub_then_add_roundtrips(
        (a, b) in (1usize..5, 1usize..5).prop_flat_map(|(m, n)| {
            (tensor_strategy(vec![m, n]), tensor_strategy(vec![m, n]))
        })
    ) {
        let roundtrip = a.sub(&b).add(&b);
        cae_tensor::assert_close(roundtrip.data(), a.data(), 1e-4);
    }

    #[test]
    fn matmul_identity_left_and_right(
        a in (1usize..6, 1usize..6).prop_flat_map(|(m, n)| tensor_strategy(vec![m, n]))
    ) {
        let m = a.dims()[0];
        let n = a.dims()[1];
        cae_tensor::assert_close(Tensor::eye(m).matmul(&a).data(), a.data(), 1e-5);
        cae_tensor::assert_close(a.matmul(&Tensor::eye(n)).data(), a.data(), 1e-5);
    }

    #[test]
    fn matmul_distributes_over_add(
        (a, b, c) in (1usize..4, 1usize..4, 1usize..4).prop_flat_map(|(m, k, n)| {
            (
                tensor_strategy(vec![m, k]),
                tensor_strategy(vec![k, n]),
                tensor_strategy(vec![k, n]),
            )
        })
    ) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        cae_tensor::assert_close(lhs.data(), rhs.data(), 1e-2);
    }

    #[test]
    fn transpose_is_involution(
        a in (1usize..6, 1usize..6).prop_flat_map(|(m, n)| tensor_strategy(vec![m, n]))
    ) {
        let tt = a.transpose().transpose();
        prop_assert_eq!(tt.data(), a.data());
    }

    #[test]
    fn transpose12_is_involution(
        a in (1usize..4, 1usize..5, 1usize..5)
            .prop_flat_map(|(b, m, n)| tensor_strategy(vec![b, m, n]))
    ) {
        let tt = a.transpose12().transpose12();
        prop_assert_eq!(tt.data(), a.data());
    }

    #[test]
    fn softmax_rows_are_distributions(
        a in (1usize..5, 1usize..6).prop_flat_map(|(m, n)| tensor_strategy(vec![m, n]))
    ) {
        let y = a.softmax_last();
        let n = a.dims()[1];
        for row in y.data().chunks_exact(n) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row sum {}", sum);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0001).contains(&v)));
        }
    }

    #[test]
    fn conv_delta_kernel_is_identity(
        a in (1usize..3, 1usize..3, 3usize..10)
            .prop_flat_map(|(b, c, l)| tensor_strategy(vec![b, c, l]))
    ) {
        // A per-channel delta kernel (identity mapping) with Same padding.
        let c = a.dims()[1];
        let mut w = Tensor::zeros(&[c, c, 3]);
        for ci in 0..c {
            w.set(&[ci, ci, 1], 1.0);
        }
        let y = a.conv1d(&w, Padding::Same);
        cae_tensor::assert_close(y.data(), a.data(), 1e-5);
    }

    #[test]
    fn conv_is_linear_in_input(
        (a, b) in (1usize..3, 1usize..3, 4usize..9).prop_flat_map(|(bs, c, l)| {
            (tensor_strategy(vec![bs, c, l]), tensor_strategy(vec![bs, c, l]))
        })
    ) {
        let c = a.dims()[1];
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(99);
        let w = Tensor::rand_uniform(&[2, c, 3], -1.0, 1.0, &mut rng);
        let lhs = a.add(&b).conv1d(&w, Padding::Causal);
        let rhs = a.conv1d(&w, Padding::Causal).add(&b.conv1d(&w, Padding::Causal));
        cae_tensor::assert_close(lhs.data(), rhs.data(), 1e-2);
    }

    #[test]
    fn mse_is_nonnegative_and_zero_on_self(
        a in (1usize..5, 1usize..5).prop_flat_map(|(m, n)| tensor_strategy(vec![m, n]))
    ) {
        prop_assert!(a.mse(&a).abs() < 1e-9);
        let shifted = a.add_scalar(1.0);
        let m = a.mse(&shifted);
        prop_assert!((m - 1.0).abs() < 1e-4);
    }

    #[test]
    fn row_sq_norms_match_total(
        a in (1usize..5, 1usize..5).prop_flat_map(|(m, n)| tensor_strategy(vec![m, n]))
    ) {
        let per_row: f32 = a.row_sq_norms().iter().sum();
        prop_assert!((per_row - a.sq_norm()).abs() < 1e-2 * (1.0 + a.sq_norm()));
    }

    /// The register-blocked `matmul_into` against a textbook triple loop,
    /// with inner dims straddling the 4-way unroll boundary.
    #[test]
    fn blocked_matmul_matches_naive_reference(
        (a, b) in (1usize..7, 1usize..11, 1usize..7).prop_flat_map(|(m, k, n)| {
            (tensor_strategy(vec![m, k]), tensor_strategy(vec![k, n]))
        })
    ) {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let fast = a.matmul(&b);
        let mut naive = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.data()[i * k + p] * b.data()[p * n + j];
                }
                naive[i * n + j] = acc;
            }
        }
        // |entry| <= k * 100; scale the tolerance with the contraction depth.
        cae_tensor::assert_close(fast.data(), &naive, 1e-3 * k as f32);
    }

    /// The implicit-im2col GEMM `conv1d` against a textbook quintuple
    /// loop, across kernel sizes straddling the 4-way unroll boundary of
    /// the GEMM depth (`C_in·K`), for both padding modes.
    #[test]
    fn fused_conv1d_matches_naive_reference(
        (x, w, causal) in (1usize..3, 1usize..4, 2usize..10, 1usize..8, 1usize..3)
            .prop_flat_map(|(bs, cin, l, k, cout)| {
                (
                    tensor_strategy(vec![bs, cin, l]),
                    tensor_strategy(vec![cout, cin, k]),
                    any::<bool>(),
                )
            })
    ) {
        let padding = if causal { Padding::Causal } else { Padding::Same };
        let (bs, cin, l) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        let (cout, k) = (w.dims()[0], w.dims()[2]);
        let pl = padding.left(k) as isize;
        let fast = x.conv1d(&w, padding);
        let mut naive = Tensor::zeros(&[bs, cout, l]);
        for bi in 0..bs {
            for co in 0..cout {
                for t in 0..l {
                    let mut acc = 0.0f32;
                    for ci in 0..cin {
                        for j in 0..k {
                            let s = t as isize + j as isize - pl;
                            if s >= 0 && (s as usize) < l {
                                acc += w.at(&[co, ci, j]) * x.at(&[bi, ci, s as usize]);
                            }
                        }
                    }
                    naive.set(&[bi, co, t], acc);
                }
            }
        }
        cae_tensor::assert_close(fast.data(), naive.data(), 1e-3 * (cin * k) as f32);
    }

    /// SIMD vs forced-scalar for the 2-D matmul family, with dimensions
    /// straddling the 6×16 tile edges and the packed-path size cutoff.
    #[test]
    fn simd_matches_scalar_matmul_family(
        (a, b) in (1usize..20, 1usize..24, 1usize..36).prop_flat_map(|(m, k, n)| {
            (small_tensor_strategy(vec![m, k]), small_tensor_strategy(vec![k, n]))
        })
    ) {
        let (scalar, simd_r) = on_both_paths(|| a.matmul(&b));
        assert_rel_close(scalar.data(), simd_r.data(), 1e-4);
        let (scalar, simd_r) = on_both_paths(|| a.transpose().matmul_tn(&b));
        assert_rel_close(scalar.data(), simd_r.data(), 1e-4);
        let (scalar, simd_r) = on_both_paths(|| a.matmul_nt(&b.transpose()));
        assert_rel_close(scalar.data(), simd_r.data(), 1e-4);
    }

    /// SIMD vs forced-scalar for the batched matmul family.
    #[test]
    fn simd_matches_scalar_bmm_family(
        (a, b) in (1usize..5, 1usize..14, 1usize..14, 1usize..20).prop_flat_map(|(bs, m, k, n)| {
            (small_tensor_strategy(vec![bs, m, k]), small_tensor_strategy(vec![bs, k, n]))
        })
    ) {
        let (scalar, simd_r) = on_both_paths(|| a.bmm(&b));
        assert_rel_close(scalar.data(), simd_r.data(), 1e-4);
        let (scalar, simd_r) = on_both_paths(|| a.bmm_nt(&b.transpose12()));
        assert_rel_close(scalar.data(), simd_r.data(), 1e-4);
        let (scalar, simd_r) = on_both_paths(|| a.transpose12().bmm_tn(&b));
        assert_rel_close(scalar.data(), simd_r.data(), 1e-4);
    }

    /// SIMD vs forced-scalar for the convolution forward and both
    /// adjoints, across kernel sizes and both padding modes.
    #[test]
    fn simd_matches_scalar_conv_family(
        (x, w, g, causal) in (1usize..4, 1usize..5, 2usize..24, 1usize..6, 1usize..5)
            .prop_flat_map(|(bs, cin, l, k, cout)| {
                (
                    small_tensor_strategy(vec![bs, cin, l]),
                    small_tensor_strategy(vec![cout, cin, k]),
                    small_tensor_strategy(vec![bs, cout, l]),
                    any::<bool>(),
                )
            })
    ) {
        let padding = if causal { Padding::Causal } else { Padding::Same };
        let k = w.dims()[2];
        let (scalar, simd_r) = on_both_paths(|| x.conv1d(&w, padding));
        assert_rel_close(scalar.data(), simd_r.data(), 1e-4);
        let (scalar, simd_r) = on_both_paths(|| Tensor::conv1d_input_grad(&g, &w, padding));
        assert_rel_close(scalar.data(), simd_r.data(), 1e-4);
        let (scalar, simd_r) =
            on_both_paths(|| Tensor::conv1d_kernel_grad(&x, &g, k, padding));
        assert_rel_close(scalar.data(), simd_r.data(), 1e-4);
    }

    /// SIMD vs forced-scalar for the dispatched elementwise kernels and
    /// reductions (the transcendentals use a polynomial `exp` on the
    /// vector path, so the comparison is toleranced, not bit-exact).
    #[test]
    fn simd_matches_scalar_elementwise(
        x in (1usize..6, 1usize..40).prop_flat_map(|(m, n)| small_tensor_strategy(vec![m, n]))
    ) {
        for op in [Tensor::sigmoid, Tensor::tanh, Tensor::relu, Tensor::softmax_last] {
            let (scalar, simd_r) = on_both_paths(|| op(&x));
            assert_rel_close(scalar.data(), simd_r.data(), 1e-4);
        }
        let (scalar, simd_r) = on_both_paths(|| Tensor::scalar(x.sum()));
        assert_rel_close(scalar.data(), simd_r.data(), 1e-4);
        let (scalar, simd_r) = on_both_paths(|| Tensor::scalar(x.sq_norm()));
        assert_rel_close(scalar.data(), simd_r.data(), 1e-4);
    }
}
