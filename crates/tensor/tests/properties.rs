//! Property-based tests of tensor algebra identities.

use cae_tensor::{Padding, Tensor};
use proptest::prelude::*;

/// Strategy producing a tensor of the given shape with bounded values.
fn tensor_strategy(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = dims.iter().product();
    proptest::collection::vec(-10.0f32..10.0, n).prop_map(move |data| Tensor::from_vec(data, &dims))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(
        (a, b) in (1usize..5, 1usize..5).prop_flat_map(|(m, n)| {
            (tensor_strategy(vec![m, n]), tensor_strategy(vec![m, n]))
        })
    ) {
        let lhs = a.add(&b);
        let rhs = b.add(&a);
        cae_tensor::assert_close(lhs.data(), rhs.data(), 1e-5);
    }

    #[test]
    fn sub_then_add_roundtrips(
        (a, b) in (1usize..5, 1usize..5).prop_flat_map(|(m, n)| {
            (tensor_strategy(vec![m, n]), tensor_strategy(vec![m, n]))
        })
    ) {
        let roundtrip = a.sub(&b).add(&b);
        cae_tensor::assert_close(roundtrip.data(), a.data(), 1e-4);
    }

    #[test]
    fn matmul_identity_left_and_right(
        a in (1usize..6, 1usize..6).prop_flat_map(|(m, n)| tensor_strategy(vec![m, n]))
    ) {
        let m = a.dims()[0];
        let n = a.dims()[1];
        cae_tensor::assert_close(Tensor::eye(m).matmul(&a).data(), a.data(), 1e-5);
        cae_tensor::assert_close(a.matmul(&Tensor::eye(n)).data(), a.data(), 1e-5);
    }

    #[test]
    fn matmul_distributes_over_add(
        (a, b, c) in (1usize..4, 1usize..4, 1usize..4).prop_flat_map(|(m, k, n)| {
            (
                tensor_strategy(vec![m, k]),
                tensor_strategy(vec![k, n]),
                tensor_strategy(vec![k, n]),
            )
        })
    ) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        cae_tensor::assert_close(lhs.data(), rhs.data(), 1e-2);
    }

    #[test]
    fn transpose_is_involution(
        a in (1usize..6, 1usize..6).prop_flat_map(|(m, n)| tensor_strategy(vec![m, n]))
    ) {
        let tt = a.transpose().transpose();
        prop_assert_eq!(tt.data(), a.data());
    }

    #[test]
    fn transpose12_is_involution(
        a in (1usize..4, 1usize..5, 1usize..5)
            .prop_flat_map(|(b, m, n)| tensor_strategy(vec![b, m, n]))
    ) {
        let tt = a.transpose12().transpose12();
        prop_assert_eq!(tt.data(), a.data());
    }

    #[test]
    fn softmax_rows_are_distributions(
        a in (1usize..5, 1usize..6).prop_flat_map(|(m, n)| tensor_strategy(vec![m, n]))
    ) {
        let y = a.softmax_last();
        let n = a.dims()[1];
        for row in y.data().chunks_exact(n) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row sum {}", sum);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0001).contains(&v)));
        }
    }

    #[test]
    fn conv_delta_kernel_is_identity(
        a in (1usize..3, 1usize..3, 3usize..10)
            .prop_flat_map(|(b, c, l)| tensor_strategy(vec![b, c, l]))
    ) {
        // A per-channel delta kernel (identity mapping) with Same padding.
        let c = a.dims()[1];
        let mut w = Tensor::zeros(&[c, c, 3]);
        for ci in 0..c {
            w.set(&[ci, ci, 1], 1.0);
        }
        let y = a.conv1d(&w, Padding::Same);
        cae_tensor::assert_close(y.data(), a.data(), 1e-5);
    }

    #[test]
    fn conv_is_linear_in_input(
        (a, b) in (1usize..3, 1usize..3, 4usize..9).prop_flat_map(|(bs, c, l)| {
            (tensor_strategy(vec![bs, c, l]), tensor_strategy(vec![bs, c, l]))
        })
    ) {
        let c = a.dims()[1];
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(99);
        let w = Tensor::rand_uniform(&[2, c, 3], -1.0, 1.0, &mut rng);
        let lhs = a.add(&b).conv1d(&w, Padding::Causal);
        let rhs = a.conv1d(&w, Padding::Causal).add(&b.conv1d(&w, Padding::Causal));
        cae_tensor::assert_close(lhs.data(), rhs.data(), 1e-2);
    }

    #[test]
    fn mse_is_nonnegative_and_zero_on_self(
        a in (1usize..5, 1usize..5).prop_flat_map(|(m, n)| tensor_strategy(vec![m, n]))
    ) {
        prop_assert!(a.mse(&a).abs() < 1e-9);
        let shifted = a.add_scalar(1.0);
        let m = a.mse(&shifted);
        prop_assert!((m - 1.0).abs() < 1e-4);
    }

    #[test]
    fn row_sq_norms_match_total(
        a in (1usize..5, 1usize..5).prop_flat_map(|(m, n)| tensor_strategy(vec![m, n]))
    ) {
        let per_row: f32 = a.row_sq_norms().iter().sum();
        prop_assert!((per_row - a.sq_norm()).abs() < 1e-2 * (1.0 + a.sq_norm()));
    }

    /// The register-blocked `matmul_into` against a textbook triple loop,
    /// with inner dims straddling the 4-way unroll boundary.
    #[test]
    fn blocked_matmul_matches_naive_reference(
        (a, b) in (1usize..7, 1usize..11, 1usize..7).prop_flat_map(|(m, k, n)| {
            (tensor_strategy(vec![m, k]), tensor_strategy(vec![k, n]))
        })
    ) {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let fast = a.matmul(&b);
        let mut naive = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.data()[i * k + p] * b.data()[p * n + j];
                }
                naive[i * n + j] = acc;
            }
        }
        // |entry| <= k * 100; scale the tolerance with the contraction depth.
        cae_tensor::assert_close(fast.data(), &naive, 1e-3 * k as f32);
    }

    /// The implicit-im2col GEMM `conv1d` against a textbook quintuple
    /// loop, across kernel sizes straddling the 4-way unroll boundary of
    /// the GEMM depth (`C_in·K`), for both padding modes.
    #[test]
    fn fused_conv1d_matches_naive_reference(
        (x, w, causal) in (1usize..3, 1usize..4, 2usize..10, 1usize..8, 1usize..3)
            .prop_flat_map(|(bs, cin, l, k, cout)| {
                (
                    tensor_strategy(vec![bs, cin, l]),
                    tensor_strategy(vec![cout, cin, k]),
                    any::<bool>(),
                )
            })
    ) {
        let padding = if causal { Padding::Causal } else { Padding::Same };
        let (bs, cin, l) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        let (cout, k) = (w.dims()[0], w.dims()[2]);
        let pl = padding.left(k) as isize;
        let fast = x.conv1d(&w, padding);
        let mut naive = Tensor::zeros(&[bs, cout, l]);
        for bi in 0..bs {
            for co in 0..cout {
                for t in 0..l {
                    let mut acc = 0.0f32;
                    for ci in 0..cin {
                        for j in 0..k {
                            let s = t as isize + j as isize - pl;
                            if s >= 0 && (s as usize) < l {
                                acc += w.at(&[co, ci, j]) * x.at(&[bi, ci, s as usize]);
                            }
                        }
                    }
                    naive.set(&[bi, co, t], acc);
                }
            }
        }
        cae_tensor::assert_close(fast.data(), naive.data(), 1e-3 * (cin * k) as f32);
    }
}
