//! Bit-exact determinism of the pooled/threaded kernels.
//!
//! The worker pool splits every kernel into contiguous output spans that
//! are computed exactly as the sequential loop would — and the packed
//! GEMM core fixes its row-block geometry by tile size, never by worker
//! count — so results must be **bit identical** across thread counts
//! *within each dispatch path* (packed AVX2 and forced scalar), and
//! across buffer-recycling cycles. These tests pin that contract for
//! matmul, the batched matmuls, the convolution kernels, and the
//! reductions, on both paths.
//!
//! All tests share one mutex: the thread count and the dispatch override
//! are process-global state, so the assertions must not interleave.

use cae_tensor::{par, simd, Padding, Tensor};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests that mutate the global thread count.
fn lock() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .expect("determinism gate poisoned")
}

/// Deterministic pseudo-random tensor (splitmix-style LCG).
fn rand_tensor(dims: &[usize], seed: u64) -> Tensor {
    let n: usize = dims.iter().product();
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let data = (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0
        })
        .collect();
    Tensor::from_vec(data, dims)
}

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runs `f` at every thread count and asserts the outputs are bit-equal
/// to the sequential (1-thread) result, separately **within each**
/// dispatch path: once with the default dispatch (packed AVX2 where the
/// host has it) and once with the scalar path forced. Packing must not
/// make results depend on the worker count.
fn assert_bit_exact_across_threads(name: &str, f: impl Fn() -> Vec<Vec<f32>>) {
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            simd::set_force_scalar(false);
            par::set_threads(1);
        }
    }
    let _reset = Reset;
    for force_scalar in [false, true] {
        simd::set_force_scalar(force_scalar);
        let path = if force_scalar { "scalar" } else { "dispatched" };
        par::set_threads(1);
        let reference = f();
        for &t in &THREAD_COUNTS[1..] {
            par::set_threads(t);
            let got = f();
            par::set_threads(1);
            assert_eq!(
                reference.len(),
                got.len(),
                "{name} [{path}]: output count differs at {t} threads"
            );
            for (out_idx, (a, b)) in reference.iter().zip(got.iter()).enumerate() {
                assert!(
                    a == b,
                    "{name} [{path}]: output {out_idx} not bit-exact at {t} threads"
                );
            }
        }
    }
}

#[test]
fn matmul_family_bit_exact_across_thread_counts() {
    let _gate = lock();
    // Big enough that every kernel clears PAR_THRESHOLD and fans out.
    let a2 = rand_tensor(&[96, 64], 1);
    let b2 = rand_tensor(&[64, 80], 2);
    let a3 = rand_tensor(&[48, 24, 16], 3);
    let b3 = rand_tensor(&[48, 16, 24], 4);
    let bt = rand_tensor(&[48, 24, 16], 5);
    assert_bit_exact_across_threads("matmul family", || {
        vec![
            a2.matmul(&b2).into_vec(),
            a2.matmul_nt(&rand_tensor(&[80, 64], 6)).into_vec(),
            a2.matmul_tn(&rand_tensor(&[96, 80], 7)).into_vec(),
            a3.bmm(&b3).into_vec(),
            a3.bmm_nt(&bt).into_vec(),
            a3.transpose12().bmm_tn(&b3).into_vec(),
        ]
    });
}

#[test]
fn matmul_edge_tiles_bit_exact_across_thread_counts() {
    let _gate = lock();
    // Dimensions off the 6×16 tile grid: the last row block is 4 high
    // and the last column panel 5 wide, so the packed path exercises its
    // zero-padded edge tiles at every thread count.
    let a = rand_tensor(&[94, 37], 51);
    let b = rand_tensor(&[37, 85], 52);
    assert_bit_exact_across_threads("matmul edge tiles", || {
        vec![
            a.matmul(&b).into_vec(),
            a.matmul_nt(&rand_tensor(&[85, 37], 53)).into_vec(),
            a.matmul_tn(&rand_tensor(&[94, 85], 54)).into_vec(),
        ]
    });
}

#[test]
fn conv_kernels_bit_exact_across_thread_counts() {
    let _gate = lock();
    let x = rand_tensor(&[32, 16, 32], 11);
    let w = rand_tensor(&[16, 16, 3], 12);
    let g = rand_tensor(&[32, 16, 32], 13);
    assert_bit_exact_across_threads("conv kernels", || {
        vec![
            x.conv1d(&w, Padding::Same).into_vec(),
            x.conv1d(&w, Padding::Causal).into_vec(),
            Tensor::conv1d_input_grad(&g, &w, Padding::Same).into_vec(),
            Tensor::conv1d_input_grad(&g, &w, Padding::Causal).into_vec(),
            Tensor::conv1d_kernel_grad(&x, &g, 3, Padding::Same).into_vec(),
            Tensor::conv1d_kernel_grad(&x, &g, 3, Padding::Causal).into_vec(),
        ]
    });
}

#[test]
fn reductions_bit_exact_across_thread_counts() {
    let _gate = lock();
    let x = rand_tensor(&[24, 32, 24], 21);
    assert_bit_exact_across_threads("reductions", || {
        vec![
            x.sum_axis0().into_vec(),
            x.sum_keep_last().into_vec(),
            x.sum_keep_channel().into_vec(),
            vec![x.sum(), x.mean(), x.sq_norm()],
            x.row_sq_norms(),
        ]
    });
}

#[test]
fn results_unchanged_after_scratch_recycling() {
    let _gate = lock();
    par::set_threads(2);
    let x = rand_tensor(&[32, 16, 32], 31);
    let w = rand_tensor(&[16, 16, 3], 32);
    let a = rand_tensor(&[96, 64], 33);
    let b = rand_tensor(&[64, 96], 34);
    let conv_ref = x.conv1d(&w, Padding::Same);
    let mm_ref = a.matmul(&b);
    // Poison the scratch pool with recycled garbage between runs: pooled
    // outputs must still come back fully initialized.
    for round in 0..5 {
        let mut junk = Tensor::full_pooled(&[32, 16, 32], f32::NAN);
        junk.data_mut()[0] = round as f32;
        junk.recycle();
        Tensor::full_pooled(&[96, 96], f32::INFINITY).recycle();
        let conv = x.conv1d(&w, Padding::Same);
        let mm = a.matmul(&b);
        assert!(conv == conv_ref, "conv output differs after recycling");
        assert!(mm == mm_ref, "matmul output differs after recycling");
        conv.recycle();
        mm.recycle();
    }
    par::set_threads(1);
}

#[test]
fn pool_spawns_workers_once_per_process() {
    let _gate = lock();
    par::set_threads(4);
    let work = || {
        let x = rand_tensor(&[32, 16, 32], 41);
        let w = rand_tensor(&[16, 16, 3], 42);
        x.conv1d(&w, Padding::Same).recycle();
        let a = rand_tensor(&[96, 64], 43);
        a.matmul(&rand_tensor(&[64, 96], 44)).recycle();
    };
    work();
    // Other tests in this binary may already have grown the pool to their
    // own thread counts (up to 8 → 7 workers); it must never exceed that.
    let after_warmup = par::pool_threads_spawned();
    assert!(
        (1..=7).contains(&after_warmup),
        "expected 1..=7 workers after a 4-thread kernel, got {after_warmup}"
    );
    for _ in 0..100 {
        work();
    }
    par::set_threads(1);
    assert_eq!(
        par::pool_threads_spawned(),
        after_warmup,
        "pool re-spawned workers on later kernel calls"
    );
}
