//! Property-based tests of metric invariants.

use cae_metrics::{best_f1, pr_auc, precision_recall_f1, roc_auc, top_k_threshold};
use proptest::prelude::*;

/// Scores and labels of equal length, with at least one of each class.
fn scored_labels() -> impl Strategy<Value = (Vec<f32>, Vec<bool>)> {
    (4usize..64).prop_flat_map(|n| {
        (
            proptest::collection::vec(-100.0f32..100.0, n),
            proptest::collection::vec(any::<bool>(), n),
        )
            .prop_filter("need both classes", |(_, labels)| {
                labels.iter().any(|&l| l) && labels.iter().any(|&l| !l)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn aucs_are_in_unit_interval((scores, labels) in scored_labels()) {
        let roc = roc_auc(&scores, &labels);
        let pr = pr_auc(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&roc), "roc {roc}");
        prop_assert!((0.0..=1.0).contains(&pr), "pr {pr}");
    }

    #[test]
    fn roc_auc_flips_under_score_negation((scores, labels) in scored_labels()) {
        let auc = roc_auc(&scores, &labels);
        let neg: Vec<f32> = scores.iter().map(|s| -s).collect();
        let flipped = roc_auc(&neg, &labels);
        prop_assert!((auc + flipped - 1.0).abs() < 1e-9);
    }

    #[test]
    fn roc_auc_invariant_to_monotone_transform((scores, labels) in scored_labels()) {
        let auc = roc_auc(&scores, &labels);
        let squashed: Vec<f32> = scores.iter().map(|s| (s / 50.0).tanh()).collect();
        let auc2 = roc_auc(&squashed, &labels);
        prop_assert!((auc - auc2).abs() < 1e-6, "{auc} vs {auc2}");
    }

    #[test]
    fn perfect_scores_give_perfect_metrics(labels in proptest::collection::vec(any::<bool>(), 4..64)
        .prop_filter("need both classes", |l| l.iter().any(|&x| x) && l.iter().any(|&x| !x)))
    {
        // Score = label: a perfectly separating detector.
        let scores: Vec<f32> = labels.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();
        prop_assert_eq!(roc_auc(&scores, &labels), 1.0);
        prop_assert!((pr_auc(&scores, &labels) - 1.0).abs() < 1e-12);
        prop_assert_eq!(best_f1(&scores, &labels).f1, 1.0);
    }

    #[test]
    fn best_f1_dominates_every_threshold((scores, labels) in scored_labels()) {
        let best = best_f1(&scores, &labels);
        for &t in &scores {
            let at = precision_recall_f1(&scores, &labels, t);
            prop_assert!(best.f1 >= at.f1 - 1e-9, "best {} < at-threshold {}", best.f1, at.f1);
        }
        // And the claimed threshold must reproduce the claimed F1.
        let check = precision_recall_f1(&scores, &labels, best.threshold);
        prop_assert!((check.f1 - best.f1).abs() < 1e-9);
    }

    #[test]
    fn recall_monotone_in_threshold((scores, labels) in scored_labels()) {
        let mut ts: Vec<f32> = scores.clone();
        ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last_recall = f64::INFINITY;
        for &t in &ts {
            let m = precision_recall_f1(&scores, &labels, t);
            prop_assert!(m.recall <= last_recall + 1e-12);
            last_recall = m.recall;
        }
    }

    #[test]
    fn top_k_flags_expected_fraction(scores in proptest::collection::vec(-1000.0f32..1000.0, 10..200),
                                     k in 0.0f64..100.0) {
        // Deduplicate-free expectation only holds for distinct scores; use
        // index perturbation to break ties deterministically.
        let distinct: Vec<f32> = scores.iter().enumerate()
            .map(|(i, &s)| s + i as f32 * 1e-3).collect();
        let t = top_k_threshold(&distinct, k);
        let flagged = distinct.iter().filter(|&&s| s > t).count();
        let expected = ((k / 100.0) * distinct.len() as f64).round() as usize;
        prop_assert!(flagged == expected.min(distinct.len()),
            "flagged {flagged}, expected {expected}");
    }

    #[test]
    fn f1_is_harmonic_mean((scores, labels) in scored_labels(), t in -100.0f32..100.0) {
        let m = precision_recall_f1(&scores, &labels, t);
        if m.precision + m.recall > 0.0 {
            let harmonic = 2.0 * m.precision * m.recall / (m.precision + m.recall);
            prop_assert!((m.f1 - harmonic).abs() < 1e-12);
        } else {
            prop_assert_eq!(m.f1, 0.0);
        }
    }
}
