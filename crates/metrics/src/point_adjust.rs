//! Point-adjusted evaluation (Xu et al., WWW 2018).
//!
//! The paper's Figures 11–12 show why raw per-observation recall is
//! depressed under interval-granular ground truth: labels mark whole
//! anomalous intervals while detectors flag only the truly deviating
//! points inside. The *point-adjust* protocol — standard in the follow-up
//! literature — counts an entire ground-truth interval as detected if
//! **any** of its observations is flagged. This module implements it as an
//! extension so both raw and adjusted numbers can be reported.

use crate::{best_f1, precision_recall_f1, PrecisionRecallF1};

/// Expands predictions: if any flagged point falls inside a ground-truth
/// anomaly interval, every point of that interval becomes flagged.
///
/// Returns the adjusted prediction vector.
pub fn adjust_predictions(predicted: &[bool], labels: &[bool]) -> Vec<bool> {
    assert_eq!(
        predicted.len(),
        labels.len(),
        "predictions/labels length mismatch"
    );
    let mut adjusted = predicted.to_vec();
    let mut i = 0;
    while i < labels.len() {
        if labels[i] {
            let start = i;
            while i < labels.len() && labels[i] {
                i += 1;
            }
            if predicted[start..i].iter().any(|&p| p) {
                adjusted[start..i].fill(true);
            }
        } else {
            i += 1;
        }
    }
    adjusted
}

/// Precision/recall/F1 at `threshold` under the point-adjust protocol.
pub fn point_adjusted_prf(scores: &[f32], labels: &[bool], threshold: f32) -> PrecisionRecallF1 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let predicted: Vec<bool> = scores.iter().map(|&s| s > threshold).collect();
    let adjusted = adjust_predictions(&predicted, labels);
    // Reuse the threshold-metric machinery on the adjusted 0/1 scores.
    let adjusted_scores: Vec<f32> = adjusted
        .iter()
        .map(|&p| if p { 1.0 } else { 0.0 })
        .collect();
    let mut m = precision_recall_f1(&adjusted_scores, labels, 0.5);
    m.threshold = threshold;
    m
}

/// Best point-adjusted F1 over all thresholds (sweeps the distinct raw
/// scores, adjusting at each).
pub fn best_point_adjusted_f1(scores: &[f32], labels: &[bool]) -> PrecisionRecallF1 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    // No scores ⇒ nothing to sweep: the quantile index arithmetic below
    // needs a non-empty sorted vector. Mirror `best_f1` and report the
    // all-zero default.
    if scores.is_empty() {
        return PrecisionRecallF1::default();
    }
    // Candidate thresholds: the raw best-F1 threshold plus the score
    // quantiles — point adjustment is monotone in the flagged set, so a
    // coarse sweep suffices and keeps this O(n log n).
    let mut candidates: Vec<f32> = Vec::with_capacity(64);
    candidates.push(best_f1(scores, labels).threshold);
    let mut sorted = scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("scores must not be NaN"));
    for q in 1..=60 {
        let idx = (q * (sorted.len() - 1)) / 61;
        candidates.push(sorted[idx]);
    }
    let mut best = PrecisionRecallF1::default();
    for &t in &candidates {
        let m = point_adjusted_prf(scores, labels, t);
        if m.f1 > best.f1 {
            best = m;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_hit_covers_whole_interval() {
        let labels = [false, true, true, true, false];
        let predicted = [false, false, true, false, false];
        let adjusted = adjust_predictions(&predicted, &labels);
        assert_eq!(adjusted, [false, true, true, true, false]);
    }

    #[test]
    fn missed_interval_stays_missed() {
        let labels = [true, true, false, true, true];
        let predicted = [false, false, false, true, false];
        let adjusted = adjust_predictions(&predicted, &labels);
        assert_eq!(adjusted, [false, false, false, true, true]);
    }

    #[test]
    fn false_positives_outside_intervals_are_kept() {
        let labels = [false, false, true, false];
        let predicted = [true, false, false, false];
        let adjusted = adjust_predictions(&predicted, &labels);
        assert_eq!(adjusted, [true, false, false, false]);
    }

    #[test]
    fn adjusted_recall_dominates_raw_recall() {
        // One peak inside a 5-point interval: raw recall 1/5, adjusted 1.
        let labels = vec![false, true, true, true, true, true, false, false];
        let scores = vec![0.1, 0.1, 0.1, 5.0, 0.1, 0.1, 0.1, 0.1];
        let raw = precision_recall_f1(&scores, &labels, 1.0);
        let adjusted = point_adjusted_prf(&scores, &labels, 1.0);
        assert!((raw.recall - 0.2).abs() < 1e-9);
        assert_eq!(adjusted.recall, 1.0);
        assert!(adjusted.f1 > raw.f1);
    }

    #[test]
    fn best_adjusted_f1_at_least_best_raw_f1() {
        let labels = vec![false, true, true, false, false, true, true, true, false];
        let scores = vec![0.2, 0.1, 3.0, 0.3, 0.2, 0.1, 4.0, 0.2, 0.1];
        let raw = best_f1(&scores, &labels);
        let adjusted = best_point_adjusted_f1(&scores, &labels);
        assert!(
            adjusted.f1 >= raw.f1 - 1e-9,
            "adjusted {} < raw {}",
            adjusted.f1,
            raw.f1
        );
        assert_eq!(adjusted.recall, 1.0); // both intervals contain a peak
    }

    #[test]
    fn no_anomalies_yields_zero() {
        let labels = vec![false; 5];
        let scores = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let m = best_point_adjusted_f1(&scores, &labels);
        assert_eq!(m.f1, 0.0);
    }

    // Regression tests for the empty-scores panic: the quantile sweep used
    // to compute `(q * (sorted.len() - 1)) / 61` on an empty vector, which
    // underflowed and then indexed out of bounds.

    #[test]
    fn best_adjusted_f1_on_empty_input_is_default() {
        assert_eq!(
            best_point_adjusted_f1(&[], &[]),
            PrecisionRecallF1::default()
        );
    }

    #[test]
    fn adjusted_prf_on_empty_input_is_default() {
        let m = point_adjusted_prf(&[], &[], 0.5);
        assert_eq!((m.precision, m.recall, m.f1), (0.0, 0.0, 0.0));
    }

    #[test]
    fn best_adjusted_f1_all_negative_labels() {
        let m = best_point_adjusted_f1(&[0.3, 0.1, 0.2], &[false, false, false]);
        assert_eq!(m.f1, 0.0);
        assert_eq!(m.recall, 0.0);
    }

    #[test]
    fn best_adjusted_f1_single_element() {
        let hit = best_point_adjusted_f1(&[1.0], &[true]);
        assert_eq!(hit.f1, 1.0);
        let miss = best_point_adjusted_f1(&[1.0], &[false]);
        assert_eq!(miss.f1, 0.0);
    }

    #[test]
    fn best_raw_f1_empty_all_negative_single() {
        // The raw sweep entry point guards the same edge cases.
        assert_eq!(best_f1(&[], &[]), PrecisionRecallF1::default());
        assert_eq!(best_f1(&[0.5, 0.7], &[false, false]).f1, 0.0);
        assert_eq!(best_f1(&[2.0], &[true]).f1, 1.0);
    }
}
