//! Evaluation metrics for unsupervised outlier detection (paper §4.1.3).
//!
//! Two families, exactly as the paper evaluates:
//!
//! * **All-threshold metrics** — [`roc_auc`] and [`pr_auc`] integrate over
//!   every possible outlier-score threshold; used when no domain knowledge
//!   for picking a threshold exists.
//! * **Specific-threshold metrics** — [`precision_recall_f1`] at a chosen
//!   threshold; [`best_f1`] sweeps all thresholds and reports the best
//!   achievable F1 with its precision/recall (the protocol of Tables 3–4);
//!   [`top_k_threshold`] converts prior knowledge of the outlier *ratio*
//!   into a threshold (the protocol of Figure 13).
//!
//! Scores are `f32` outlier scores (higher = more anomalous); labels are
//! `bool` ground truth (true = outlier).

mod auc;
mod point_adjust;
mod threshold;

pub use auc::{pr_auc, roc_auc};
pub use point_adjust::{adjust_predictions, best_point_adjusted_f1, point_adjusted_prf};
pub use threshold::{
    best_f1, confusion_counts, precision_recall_f1, top_k_threshold, Confusion, PrecisionRecallF1,
};

use serde::{Deserialize, Serialize};

/// One row of the paper's accuracy tables: threshold metrics at the best-F1
/// threshold plus the two all-threshold metrics.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Precision at the best-F1 threshold.
    pub precision: f64,
    /// Recall at the best-F1 threshold.
    pub recall: f64,
    /// Best achievable F1 over all thresholds.
    pub f1: f64,
    /// Area under the precision-recall curve (average precision).
    pub pr_auc: f64,
    /// Area under the ROC curve.
    pub roc_auc: f64,
}

impl EvalReport {
    /// Computes the full report for a score/label set.
    pub fn compute(scores: &[f32], labels: &[bool]) -> EvalReport {
        let prf = best_f1(scores, labels);
        EvalReport {
            precision: prf.precision,
            recall: prf.recall,
            f1: prf.f1,
            pr_auc: pr_auc(scores, labels),
            roc_auc: roc_auc(scores, labels),
        }
    }
}

impl std::fmt::Display for EvalReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P {:.4}  R {:.4}  F1 {:.4}  PR {:.4}  ROC {:.4}",
            self.precision, self.recall, self.f1, self.pr_auc, self.roc_auc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_on_perfect_detector() {
        let scores = [0.1, 0.2, 0.9, 0.8, 0.1];
        let labels = [false, false, true, true, false];
        let r = EvalReport::compute(&scores, &labels);
        assert_eq!(r.f1, 1.0);
        assert_eq!(r.pr_auc, 1.0);
        assert_eq!(r.roc_auc, 1.0);
    }

    #[test]
    fn display_formats_all_five() {
        let r = EvalReport {
            precision: 0.5,
            recall: 0.25,
            f1: 1.0 / 3.0,
            pr_auc: 0.4,
            roc_auc: 0.6,
        };
        let s = format!("{r}");
        assert!(s.contains("P 0.5000"));
        assert!(s.contains("ROC 0.6000"));
    }
}
