//! Area-under-curve metrics integrating over all thresholds.

/// Area under the ROC curve via the rank statistic (Mann–Whitney U), with
/// average ranks for tied scores.
///
/// Returns 0.5 when either class is empty (no ranking information).
pub fn roc_auc(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let pos = labels.iter().filter(|&&l| l).count();
    let neg = labels.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .expect("scores must not be NaN")
    });

    // Sum the (average) ranks of the positive examples.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0usize;
    while i < order.len() {
        // Group of tied scores [i, j).
        let mut j = i + 1;
        while j < order.len() && scores[order[j]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + 1 + j) as f64 / 2.0; // mean of ranks i+1..=j
        for &idx in &order[i..j] {
            if labels[idx] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j;
    }

    let u = rank_sum_pos - (pos * (pos + 1)) as f64 / 2.0;
    u / (pos as f64 * neg as f64)
}

/// Area under the precision-recall curve (average precision): the sum of
/// precision·Δrecall over descending score thresholds, with tied scores
/// processed as one group.
///
/// Returns 0 when there are no positive labels.
pub fn pr_auc(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let pos = labels.iter().filter(|&&l| l).count();
    if pos == 0 || scores.is_empty() {
        return 0.0;
    }

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("scores must not be NaN")
    });

    let mut ap = 0.0f64;
    let mut tp = 0usize;
    let mut seen = 0usize;
    let mut i = 0usize;
    while i < order.len() {
        let mut j = i + 1;
        while j < order.len() && scores[order[j]] == scores[order[i]] {
            j += 1;
        }
        let group_tp = order[i..j].iter().filter(|&&idx| labels[idx]).count();
        tp += group_tp;
        seen += j - i;
        if group_tp > 0 {
            let precision = tp as f64 / seen as f64;
            let delta_recall = group_tp as f64 / pos as f64;
            ap += precision * delta_recall;
        }
        i = j;
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking() {
        let scores = [0.9, 0.8, 0.3, 0.2, 0.1];
        let labels = [true, true, false, false, false];
        assert_eq!(roc_auc(&scores, &labels), 1.0);
        assert_eq!(pr_auc(&scores, &labels), 1.0);
    }

    #[test]
    fn inverted_ranking() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [true, true, false, false];
        assert_eq!(roc_auc(&scores, &labels), 0.0);
        // AP of worst ranking: positives at ranks 3 and 4 → (1/3 + 2/4)/2
        let expected = (1.0 / 3.0 + 2.0 / 4.0) / 2.0;
        assert!((pr_auc(&scores, &labels) - expected).abs() < 1e-12);
    }

    #[test]
    fn random_like_ranking_is_half() {
        // Alternating labels with strictly increasing scores.
        let scores: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let labels: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let auc = roc_auc(&scores, &labels);
        assert!((auc - 0.5).abs() < 0.02, "auc {auc}");
    }

    #[test]
    fn ties_get_average_rank() {
        // All scores equal → AUC must be exactly 0.5.
        let scores = [1.0f32; 6];
        let labels = [true, false, true, false, true, false];
        assert_eq!(roc_auc(&scores, &labels), 0.5);
        // AP with all tied = prevalence.
        assert!((pr_auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_label_sets() {
        let scores = [0.1, 0.5, 0.9];
        assert_eq!(roc_auc(&scores, &[false, false, false]), 0.5);
        assert_eq!(roc_auc(&scores, &[true, true, true]), 0.5);
        assert_eq!(pr_auc(&scores, &[false, false, false]), 0.0);
    }

    #[test]
    fn pr_auc_equals_prevalence_for_constant_scores() {
        let scores = [2.0f32; 10];
        let labels: Vec<bool> = (0..10).map(|i| i < 3).collect();
        assert!((pr_auc(&scores, &labels) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn known_small_case() {
        // scores desc: 0.8(+), 0.6(−), 0.4(+), 0.2(−)
        let scores = [0.8, 0.6, 0.4, 0.2];
        let labels = [true, false, true, false];
        // ROC: positives ranked 1st and 3rd of 4 → AUC = 3/4
        assert!((roc_auc(&scores, &labels) - 0.75).abs() < 1e-12);
        // AP = 1/2·(1/1) + 1/2·(2/3)
        let expected = 0.5 * 1.0 + 0.5 * (2.0 / 3.0);
        assert!((pr_auc(&scores, &labels) - expected).abs() < 1e-12);
    }
}
