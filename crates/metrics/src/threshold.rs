//! Threshold-dependent metrics: confusion counts, precision/recall/F1,
//! best-F1 search and top-K% thresholding.

use serde::{Deserialize, Serialize};

/// Confusion-matrix counts at a threshold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// Outliers predicted as outliers.
    pub tp: usize,
    /// Inliers predicted as inliers.
    pub tn: usize,
    /// Inliers predicted as outliers.
    pub fp: usize,
    /// Outliers predicted as inliers.
    pub fn_: usize,
}

/// Precision, recall and F1 at one threshold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PrecisionRecallF1 {
    /// TP / (TP + FP); 0 when nothing is predicted positive.
    pub precision: f64,
    /// TP / (TP + FN); 0 when there are no positives.
    pub recall: f64,
    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub f1: f64,
    /// The threshold that produced these values.
    pub threshold: f32,
}

/// Counts the confusion matrix for `score > threshold ⇒ outlier`.
pub fn confusion_counts(scores: &[f32], labels: &[bool], threshold: f32) -> Confusion {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let mut c = Confusion::default();
    for (&s, &l) in scores.iter().zip(labels.iter()) {
        match (s > threshold, l) {
            (true, true) => c.tp += 1,
            (true, false) => c.fp += 1,
            (false, true) => c.fn_ += 1,
            (false, false) => c.tn += 1,
        }
    }
    c
}

fn prf_from_confusion(c: Confusion, threshold: f32) -> PrecisionRecallF1 {
    let precision = if c.tp + c.fp == 0 {
        0.0
    } else {
        c.tp as f64 / (c.tp + c.fp) as f64
    };
    let recall = if c.tp + c.fn_ == 0 {
        0.0
    } else {
        c.tp as f64 / (c.tp + c.fn_) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PrecisionRecallF1 {
        precision,
        recall,
        f1,
        threshold,
    }
}

/// Precision/recall/F1 for `score > threshold ⇒ outlier`.
pub fn precision_recall_f1(scores: &[f32], labels: &[bool], threshold: f32) -> PrecisionRecallF1 {
    prf_from_confusion(confusion_counts(scores, labels, threshold), threshold)
}

/// Sweeps every distinct score as a candidate threshold and returns the
/// metrics at the threshold achieving the highest F1 — the "best possible
/// threshold" protocol the paper uses for Tables 3–4 (following [46, 47]).
pub fn best_f1(scores: &[f32], labels: &[bool]) -> PrecisionRecallF1 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let pos_total = labels.iter().filter(|&&l| l).count();
    if scores.is_empty() || pos_total == 0 {
        return PrecisionRecallF1::default();
    }

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("scores must not be NaN")
    });

    // Walk thresholds from high to low; predicting positive everything seen
    // so far. Threshold = midpoint below the current score group.
    let mut best = PrecisionRecallF1::default();
    let mut tp = 0usize;
    let mut seen = 0usize;
    let mut i = 0usize;
    while i < order.len() {
        let mut j = i + 1;
        while j < order.len() && scores[order[j]] == scores[order[i]] {
            j += 1;
        }
        tp += order[i..j].iter().filter(|&&idx| labels[idx]).count();
        seen += j - i;
        let precision = tp as f64 / seen as f64;
        let recall = tp as f64 / pos_total as f64;
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        if f1 > best.f1 {
            // Threshold just below this group's score admits the group; if
            // every score is admitted, −∞ is the exact threshold.
            let group_score = scores[order[i]];
            let threshold = if j < order.len() {
                let next = scores[order[j]];
                let mid = (group_score + next) / 2.0;
                // Guard against midpoints rounding up to the group score
                // when the two values are adjacent floats.
                if mid < group_score {
                    mid
                } else {
                    next
                }
            } else {
                f32::NEG_INFINITY
            };
            best = PrecisionRecallF1 {
                precision,
                recall,
                f1,
                threshold,
            };
        }
        i = j;
    }
    best
}

/// The threshold selecting the top `k_percent`% highest scores as outliers
/// (the protocol of Figure 13: "select the top K percentage of the largest
/// outlier scores as the threshold").
///
/// Returns a threshold `t` such that `score > t` holds for (approximately,
/// exactly up to ties) `k_percent`% of the scores.
pub fn top_k_threshold(scores: &[f32], k_percent: f64) -> f32 {
    assert!(!scores.is_empty(), "top_k_threshold on empty scores");
    assert!(
        (0.0..=100.0).contains(&k_percent),
        "k_percent {k_percent} outside [0, 100]"
    );
    let mut sorted: Vec<f32> = scores.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("scores must not be NaN"));
    let k = ((k_percent / 100.0) * scores.len() as f64).round() as usize;
    if k == 0 {
        return sorted[0]; // nothing above the maximum
    }
    if k >= sorted.len() {
        return f32::NEG_INFINITY;
    }
    // Midpoint between the k-th and (k+1)-th largest keeps exactly k above
    // when scores are distinct.
    (sorted[k - 1] + sorted[k]) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCORES: [f32; 6] = [0.9, 0.8, 0.7, 0.3, 0.2, 0.1];
    const LABELS: [bool; 6] = [true, true, false, true, false, false];

    #[test]
    fn confusion_at_midpoint() {
        let c = confusion_counts(&SCORES, &LABELS, 0.5);
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 1,
                fn_: 1,
                tn: 2
            }
        );
    }

    #[test]
    fn prf_known_values() {
        let m = precision_recall_f1(&SCORES, &LABELS, 0.5);
        assert!((m.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn best_f1_finds_optimum() {
        let m = best_f1(&SCORES, &LABELS);
        // Best threshold admits top 4: tp=3, fp=1 → P=0.75, R=1, F1≈0.857
        assert!((m.f1 - 6.0 / 7.0).abs() < 1e-9, "f1 {}", m.f1);
        // Verify the returned threshold reproduces the claimed metrics.
        let check = precision_recall_f1(&SCORES, &LABELS, m.threshold);
        assert_eq!(check.f1, m.f1);
    }

    #[test]
    fn best_f1_perfect_when_separable() {
        let scores = [0.9, 0.8, 0.1, 0.05];
        let labels = [true, true, false, false];
        assert_eq!(best_f1(&scores, &labels).f1, 1.0);
    }

    #[test]
    fn best_f1_empty_or_no_positives() {
        assert_eq!(best_f1(&[], &[]).f1, 0.0);
        assert_eq!(best_f1(&[1.0, 2.0], &[false, false]).f1, 0.0);
    }

    #[test]
    fn top_k_selects_expected_count() {
        let scores: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let t = top_k_threshold(&scores, 10.0);
        let flagged = scores.iter().filter(|&&s| s > t).count();
        assert_eq!(flagged, 10);
    }

    #[test]
    fn top_k_extremes() {
        let scores = [1.0, 2.0, 3.0];
        let t0 = top_k_threshold(&scores, 0.0);
        assert_eq!(scores.iter().filter(|&&s| s > t0).count(), 0);
        let t100 = top_k_threshold(&scores, 100.0);
        assert_eq!(scores.iter().filter(|&&s| s > t100).count(), 3);
    }

    #[test]
    fn threshold_semantics_strictly_greater() {
        let scores = [1.0, 1.0, 2.0];
        let labels = [false, false, true];
        let c = confusion_counts(&scores, &labels, 1.0);
        assert_eq!(c.tp, 1);
        assert_eq!(c.fp, 0);
    }
}
