//! SplitMix64 — the seeded stream behind every chaos decision.
//!
//! Chaos must be replayable: a failing seed is a bug report. SplitMix64
//! is tiny, passes BigCrush, and — unlike the workspace `rand` shim —
//! lives here so this crate stays dependency-free.

/// A SplitMix64 pseudo-random stream (Steele, Lea & Flood 2014).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed`; equal seeds replay identical streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`. `n` must be non-zero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "next_below(0)");
        // Modulo bias is ~n/2^64 — irrelevant for scheduling decisions.
        self.next_u64() % n
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_replay_equal_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn reference_values_match_splitmix64() {
        // First outputs for seed 0 from the reference implementation.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(r.next_u64(), 0x6e78_9e6a_a1b9_65f4);
    }

    #[test]
    fn next_below_and_chance_are_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..256 {
            assert!(r.next_below(13) < 13);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        let mut r = SplitMix64::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
