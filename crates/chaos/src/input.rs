//! Seeded synthesis of mixed-fleet input pathologies.
//!
//! The ensemble-techniques survey (arXiv:2308.03171) catalogs why
//! single-model happy-path detectors fail in deployment: real fleets see
//! NaN storms, sensors that freeze at their last reading, lossy and
//! duplicating transports, and malformed rows from misconfigured
//! upstreams. A [`StreamFaultInjector`] wraps one stream's clean
//! observation sequence and replays exactly those pathologies over a
//! scheduled window, deterministically per seed, so fleet tests can
//! assert degradation *and recovery* bit-exactly.

use crate::rng::SplitMix64;

/// One input-fault family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputFault {
    /// Every component replaced by a non-finite value (NaN or ±∞).
    NanStorm,
    /// The sensor freezes: the value at fault onset repeats verbatim.
    FlatLine,
    /// Observations are lost in transport.
    Dropout,
    /// Observations are delivered twice.
    Duplicate,
    /// Rows arrive with the wrong dimensionality.
    DimGarble,
}

impl InputFault {
    /// Every fault family, for matrix sweeps.
    pub const ALL: [InputFault; 5] = [
        InputFault::NanStorm,
        InputFault::FlatLine,
        InputFault::Dropout,
        InputFault::Duplicate,
        InputFault::DimGarble,
    ];
}

/// A fault family active over the half-open tick range `[from, to)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultWindow {
    /// The fault family injected inside the window.
    pub kind: InputFault,
    /// First faulty tick (inclusive).
    pub from: usize,
    /// First clean tick after the fault (exclusive end).
    pub to: usize,
}

impl FaultWindow {
    /// A window of `kind` over `[from, to)`.
    pub fn new(kind: InputFault, from: usize, to: usize) -> Self {
        assert!(from <= to, "fault window [{from}, {to}) is inverted");
        FaultWindow { kind, from, to }
    }

    /// Whether tick `t` falls inside the fault window.
    pub fn active(&self, t: usize) -> bool {
        t >= self.from && t < self.to
    }
}

/// What the transport delivers for one tick after fault injection.
#[derive(Clone, Debug, PartialEq)]
pub enum Delivery {
    /// One observation (clean or corrupted).
    Deliver(Vec<f32>),
    /// The same observation delivered twice back to back.
    DeliverTwice(Vec<f32>),
    /// The observation was lost.
    Dropped,
}

/// Applies one [`FaultWindow`] to one stream's clean observations.
///
/// Stateful where the pathology is (a flat-lined sensor freezes at its
/// *onset* value), seeded where it is random (which non-finite value a
/// NaN storm emits, how a garbled row is malformed) — equal seeds replay
/// identical corruption.
#[derive(Clone, Debug)]
pub struct StreamFaultInjector {
    window: FaultWindow,
    rng: SplitMix64,
    /// The reading the sensor froze at (captured at fault onset).
    frozen: Option<Vec<f32>>,
}

impl StreamFaultInjector {
    /// An injector replaying `window` with corruption drawn from `seed`.
    pub fn new(window: FaultWindow, seed: u64) -> Self {
        StreamFaultInjector {
            window,
            rng: SplitMix64::new(seed),
            frozen: None,
        }
    }

    /// The configured fault window.
    pub fn window(&self) -> FaultWindow {
        self.window
    }

    /// What the transport delivers at tick `t` for the clean observation
    /// `clean`. Outside the fault window this is always
    /// `Deliver(clean)`.
    pub fn next(&mut self, t: usize, clean: &[f32]) -> Delivery {
        if !self.window.active(t) {
            self.frozen = None;
            return Delivery::Deliver(clean.to_vec());
        }
        match self.window.kind {
            InputFault::NanStorm => {
                let storm = clean
                    .iter()
                    .map(|_| match self.rng.next_below(4) {
                        0 => f32::INFINITY,
                        1 => f32::NEG_INFINITY,
                        _ => f32::NAN,
                    })
                    .collect();
                Delivery::Deliver(storm)
            }
            InputFault::FlatLine => {
                let frozen = self.frozen.get_or_insert_with(|| clean.to_vec());
                Delivery::Deliver(frozen.clone())
            }
            InputFault::Dropout => Delivery::Dropped,
            InputFault::Duplicate => Delivery::DeliverTwice(clean.to_vec()),
            InputFault::DimGarble => {
                // Wrong dimensionality: truncated, extended, or empty.
                let garbled_len = match self.rng.next_below(3) {
                    0 => 0,
                    1 => clean.len().saturating_sub(1),
                    _ => clean.len() + 1 + self.rng.next_below(3) as usize,
                };
                let mut row: Vec<f32> = clean.iter().copied().cycle().take(garbled_len).collect();
                if row.len() == clean.len() {
                    // `saturating_sub` on a 1-dim stream can collide with
                    // the clean length 0… never deliver a well-formed row.
                    row.push(0.0);
                }
                Delivery::Deliver(row)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean(t: usize) -> Vec<f32> {
        vec![(t as f32 * 0.3).sin(), (t as f32 * 0.1).cos()]
    }

    fn run(kind: InputFault, seed: u64) -> Vec<Delivery> {
        let mut inj = StreamFaultInjector::new(FaultWindow::new(kind, 4, 10), seed);
        (0..14).map(|t| inj.next(t, &clean(t))).collect()
    }

    #[test]
    fn outside_the_window_is_clean_passthrough() {
        for kind in InputFault::ALL {
            let deliveries = run(kind, 3);
            for (t, d) in deliveries.iter().enumerate() {
                if !(4..10).contains(&t) {
                    assert_eq!(d, &Delivery::Deliver(clean(t)), "{kind:?} t={t}");
                }
            }
        }
    }

    /// Bitwise image of a delivery sequence — NaN-safe equality.
    fn bits(deliveries: &[Delivery]) -> Vec<Vec<u32>> {
        deliveries
            .iter()
            .map(|d| match d {
                Delivery::Deliver(r) | Delivery::DeliverTwice(r) => {
                    r.iter().map(|v| v.to_bits()).collect()
                }
                Delivery::Dropped => Vec::new(),
            })
            .collect()
    }

    #[test]
    fn nan_storm_is_entirely_non_finite_and_seed_replayable() {
        let a = run(InputFault::NanStorm, 7);
        assert_eq!(
            bits(&a),
            bits(&run(InputFault::NanStorm, 7)),
            "seed must replay bit-identically"
        );
        for d in &a[4..10] {
            let Delivery::Deliver(row) = d else {
                panic!("NaN storm still delivers rows")
            };
            assert_eq!(row.len(), 2);
            assert!(row.iter().all(|v| !v.is_finite()));
        }
    }

    #[test]
    fn flat_line_freezes_the_onset_value() {
        let deliveries = run(InputFault::FlatLine, 5);
        let frozen = clean(4);
        for (t, d) in deliveries.iter().enumerate().take(10).skip(4) {
            assert_eq!(d, &Delivery::Deliver(frozen.clone()), "t={t}");
        }
        // After the window the live value resumes.
        assert_eq!(deliveries[10], Delivery::Deliver(clean(10)));
    }

    #[test]
    fn dropout_and_duplicate_shape_the_transport() {
        for d in &run(InputFault::Dropout, 9)[4..10] {
            assert_eq!(d, &Delivery::Dropped);
        }
        for (t, d) in run(InputFault::Duplicate, 9)
            .iter()
            .enumerate()
            .take(10)
            .skip(4)
        {
            assert_eq!(d, &Delivery::DeliverTwice(clean(t)), "t={t}");
        }
    }

    #[test]
    fn dim_garble_never_delivers_a_well_formed_row() {
        for seed in 0..16 {
            for d in &run(InputFault::DimGarble, seed)[4..10] {
                let Delivery::Deliver(row) = d else {
                    panic!("garble delivers rows")
                };
                assert_ne!(row.len(), 2, "seed {seed}: garbled row has the clean dim");
            }
        }
    }
}
