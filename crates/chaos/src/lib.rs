//! Deterministic fault injection for the serving and adaptation tiers.
//!
//! Production fleets fail in ways a happy-path test suite never exercises:
//! sensors flat-line or emit NaN storms, disks fill up mid-checkpoint,
//! re-fit threads die, ticks blow their deadline under load. This crate
//! makes every one of those failures *schedulable* so the rest of the
//! workspace can prove its degradation behavior deterministically:
//!
//! * [`failpoint`] — a registry of named fault sites
//!   ([`sites::PERSIST_WRITE`], [`sites::ADAPT_REFIT`], …) that
//!   instrumented code checks at its fallible moments. Disarmed — the
//!   production state — a check is **one relaxed atomic load**; armed, a
//!   seeded [`Schedule`] decides per hit whether to inject a failure, a
//!   panic, or latency.
//! * [`input`] — a seeded generator of the mixed-fleet input pathologies
//!   (NaN storms, flat-lined sensors, dropped/duplicated observations,
//!   dimension-garbled rows) used to drive fleet tests end to end.
//! * [`health`] — the [`HealthReport`] both `cae-serve` and `cae-adapt`
//!   fill in, so one struct summarizes quarantines, load shedding,
//!   retries and fallbacks across the tiers.
//!
//! Failpoints are process-global (that is the point: the code under test
//! must not know it is being tested), so tests that arm them must hold
//! the [`exclusive`] guard to serialize against other chaos tests in the
//! same binary.
//!
//! ```
//! use cae_chaos::{sites, Schedule};
//!
//! let _chaos = cae_chaos::exclusive(); // serialize + disarm on drop
//! sites::PERSIST_WRITE.arm(Schedule::nth(0)); // first write fails
//! assert!(sites::PERSIST_WRITE.fire().is_some());
//! assert!(sites::PERSIST_WRITE.fire().is_none()); // one-shot
//! ```

pub mod failpoint;
pub mod health;
pub mod input;
pub mod rng;

pub use failpoint::{disarm_all, exclusive, sites, ChaosGuard, FailPoint, Fault, Schedule};
pub use health::HealthReport;
pub use input::{Delivery, FaultWindow, InputFault, StreamFaultInjector};
pub use rng::SplitMix64;
