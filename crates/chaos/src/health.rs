//! The shared health report both tiers fill in.
//!
//! `cae-serve` reports stream-health and load-shedding counters,
//! `cae-adapt` reports retry/backoff/fallback counters; merging the two
//! gives operators one degradation summary per fleet. The struct lives
//! here — the one crate both tiers already depend on — so neither tier
//! has to depend on the other to share it.

/// Degradation counters across the serving and adaptation tiers.
///
/// Stream-state fields (`streams_*`) are a point-in-time snapshot; every
/// other field is a monotonic lifetime counter. [`HealthReport::merge`]
/// adds another report field-wise, which is correct for combining the
/// serving half and the adaptation half (each leaves the other's fields
/// zero), or for summing reports across shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Streams currently in the `Healthy` state.
    pub streams_healthy: u64,
    /// Streams currently in the `Suspect` state.
    pub streams_suspect: u64,
    /// Streams currently in the `Quarantined` state.
    pub streams_quarantined: u64,
    /// Streams currently in the `Recovering` state.
    pub streams_recovering: u64,
    /// Transitions into `Quarantined` over the fleet's lifetime.
    pub quarantine_events: u64,
    /// Transitions from `Recovering` back to `Healthy`.
    pub recoveries: u64,
    /// Observations rejected as faulty (non-finite, flat-lined past the
    /// threshold, or dimension-garbled).
    pub faulty_observations: u64,
    /// Ready windows deferred by the tick budget (load shedding).
    pub shed_windows: u64,
    /// Non-finite scores suppressed at the tick boundary.
    pub suppressed_scores: u64,
    /// Re-fit attempts retried after a failure or panic.
    pub refit_retries: u64,
    /// Re-fits abandoned after exhausting their retry budget.
    pub refits_failed: u64,
    /// Re-fit launches lost to spawn failure (thread exhaustion).
    pub spawn_failures: u64,
    /// Checkpoint writes retried after an I/O failure.
    pub checkpoint_retries: u64,
    /// Publishes that fell back to in-memory-only after every checkpoint
    /// write attempt failed.
    pub checkpoint_fallbacks: u64,
    /// Total scheduled retry backoff, in milliseconds.
    pub backoff_ms: u64,
}

impl HealthReport {
    /// Adds `other` field-wise (snapshot fields included — merging is
    /// meant for disjoint halves or distinct shards).
    pub fn merge(&mut self, other: &HealthReport) {
        self.streams_healthy += other.streams_healthy;
        self.streams_suspect += other.streams_suspect;
        self.streams_quarantined += other.streams_quarantined;
        self.streams_recovering += other.streams_recovering;
        self.quarantine_events += other.quarantine_events;
        self.recoveries += other.recoveries;
        self.faulty_observations += other.faulty_observations;
        self.shed_windows += other.shed_windows;
        self.suppressed_scores += other.suppressed_scores;
        self.refit_retries += other.refit_retries;
        self.refits_failed += other.refits_failed;
        self.spawn_failures += other.spawn_failures;
        self.checkpoint_retries += other.checkpoint_retries;
        self.checkpoint_fallbacks += other.checkpoint_fallbacks;
        self.backoff_ms += other.backoff_ms;
    }

    /// Whether anything beyond healthy steady-state has been observed:
    /// any stream outside `Healthy`, or any degradation counter non-zero.
    pub fn degraded(&self) -> bool {
        let snapshot =
            self.streams_suspect + self.streams_quarantined + self.streams_recovering > 0;
        let counters = self.quarantine_events
            + self.faulty_observations
            + self.shed_windows
            + self.suppressed_scores
            + self.refit_retries
            + self.refits_failed
            + self.spawn_failures
            + self.checkpoint_retries
            + self.checkpoint_fallbacks
            > 0;
        snapshot || counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_not_degraded() {
        assert!(!HealthReport::default().degraded());
        let healthy_fleet = HealthReport {
            streams_healthy: 64,
            recoveries: 3,
            backoff_ms: 0,
            ..HealthReport::default()
        };
        // Healthy streams and completed recoveries are not degradation.
        assert!(!healthy_fleet.degraded());
    }

    /// A fleet that served cleanly but had to publish in-memory-only
    /// (every checkpoint write attempt failed) *is* degraded: durability
    /// was lost even though serving never faltered. Pinned so
    /// `checkpoint_fallbacks` can never silently drop out of the
    /// `degraded()` sum.
    #[test]
    fn checkpoint_fallback_alone_marks_degradation() {
        let report = HealthReport {
            streams_healthy: 8,
            checkpoint_fallbacks: 1,
            ..HealthReport::default()
        };
        assert!(report.degraded());
        // `recoveries` and `backoff_ms` stay excluded: a completed
        // recovery is health restored, and backoff only accompanies
        // retries that are already counted.
        let recovered = HealthReport {
            streams_healthy: 8,
            recoveries: 2,
            backoff_ms: 40,
            ..HealthReport::default()
        };
        assert!(!recovered.degraded());
    }

    #[test]
    fn merge_adds_fieldwise() {
        let serve = HealthReport {
            streams_healthy: 60,
            streams_quarantined: 4,
            quarantine_events: 7,
            shed_windows: 12,
            ..HealthReport::default()
        };
        let adapt = HealthReport {
            refit_retries: 2,
            checkpoint_retries: 3,
            checkpoint_fallbacks: 1,
            backoff_ms: 70,
            ..HealthReport::default()
        };
        let mut merged = serve;
        merged.merge(&adapt);
        assert_eq!(merged.streams_quarantined, 4);
        assert_eq!(merged.checkpoint_retries, 3);
        assert_eq!(merged.backoff_ms, 70);
        assert!(merged.degraded());
    }
}
