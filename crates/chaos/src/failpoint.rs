//! Named failpoints with deterministic, seeded schedules.
//!
//! A [`FailPoint`] is a static fault site compiled into production code.
//! Its hot-path contract is strict: **disarmed, a [`FailPoint::check`]
//! costs exactly one relaxed atomic load** — no branch on shared mutable
//! state, no lock, no counter. Only the armed (test) path takes the
//! site's mutex to evaluate its [`Schedule`].
//!
//! Schedules are deterministic per seed: `nth(k)` trips on exactly the
//! k-th evaluation, `every(n)` on every n-th, `probability(p, seed)`
//! draws from a private SplitMix64 stream. A schedule injects one of
//! three fault kinds: a **trip** (the site returns its injected failure,
//! optionally carrying a payload such as a torn-write byte offset), a
//! **panic** (for exercising catch-and-retry supervision), or **latency**
//! (a sleep, for deadline and backoff testing).

use crate::rng::SplitMix64;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// What a [`FailPoint::check`] told the instrumented site to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Proceed normally (always the case while disarmed).
    None,
    /// Inject the site's failure. `payload` carries a site-specific
    /// parameter — `persist.write` reads it as the number of bytes to
    /// tear the write at, `serve.tick_deadline` as the surviving window
    /// budget; `None` means the site's default (fail outright).
    Trip {
        /// Site-specific fault parameter (see [`Schedule::payload`]).
        payload: Option<u64>,
    },
    /// Inject latency: the site should sleep for `ms` milliseconds and
    /// then proceed normally.
    Sleep {
        /// Injected delay in milliseconds.
        ms: u64,
    },
    /// Panic at the site (exercises supervision/catch paths).
    Panic,
}

/// Which fault a schedule injects when it decides to act.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Trip { payload: Option<u64> },
    Sleep { ms: u64 },
    Panic,
}

/// When an armed schedule acts, counted in evaluations since arming.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Plan {
    /// Exactly on the `n`-th evaluation (0-based).
    Nth(u64),
    /// On every `n`-th evaluation (the n-th, 2n-th, …).
    Every(u64),
    /// Independently per evaluation with probability `p`, drawn from the
    /// schedule's seeded stream.
    Probability(f64),
    /// On every evaluation.
    Always,
}

/// A deterministic fault schedule, armed onto a [`FailPoint`].
#[derive(Clone, Debug, PartialEq)]
pub struct Schedule {
    plan: Plan,
    kind: Kind,
    /// Total faults this arming may inject (`None` = unlimited).
    limit: Option<u64>,
    seed: u64,
}

impl Schedule {
    fn with_plan(plan: Plan, limit: Option<u64>) -> Self {
        Schedule {
            plan,
            kind: Kind::Trip { payload: None },
            limit,
            seed: 0x5eed_c4a0_5eed_c4a0,
        }
    }

    /// Fail exactly once, on the `n`-th evaluation after arming
    /// (0-based): `nth(0)` fails the very next check.
    pub fn nth(n: u64) -> Self {
        Self::with_plan(Plan::Nth(n), Some(1))
    }

    /// Fail on every `n`-th evaluation (`n ≥ 1`), without limit.
    pub fn every(n: u64) -> Self {
        assert!(n >= 1, "every(0) would never fire");
        Self::with_plan(Plan::Every(n), None)
    }

    /// Fail each evaluation independently with probability `p`, drawn
    /// from a SplitMix64 stream seeded with `seed` — bit-replayable.
    pub fn probability(p: f64, seed: u64) -> Self {
        let mut s = Self::with_plan(Plan::Probability(p.clamp(0.0, 1.0)), None);
        s.seed = seed;
        s
    }

    /// Fail every evaluation.
    pub fn always() -> Self {
        Self::with_plan(Plan::Always, None)
    }

    /// Attaches a site-specific payload to the injected trips (e.g. the
    /// byte offset `persist.write` tears the temp file at).
    pub fn payload(mut self, value: u64) -> Self {
        self.kind = Kind::Trip {
            payload: Some(value),
        };
        self
    }

    /// Injects a panic instead of a trip — for exercising the
    /// catch-and-retry supervision around re-fit workers.
    pub fn panicking(mut self) -> Self {
        self.kind = Kind::Panic;
        self
    }

    /// Injects `ms` milliseconds of latency instead of a failure.
    pub fn sleeping_ms(mut self, ms: u64) -> Self {
        self.kind = Kind::Sleep { ms };
        self
    }

    /// Caps the total number of injected faults for this arming.
    pub fn times(mut self, n: u64) -> Self {
        self.limit = Some(n);
        self
    }
}

/// Mutable evaluation state of an armed schedule.
#[derive(Debug)]
struct Armed {
    schedule: Schedule,
    /// Evaluations since arming.
    hits: u64,
    /// Faults injected since arming.
    trips: u64,
    rng: SplitMix64,
}

/// A named fault site. Instrumented code calls [`FailPoint::check`] (or
/// the [`FailPoint::fire`] convenience) at the moment the corresponding
/// real-world failure would strike; tests arm a [`Schedule`] to make that
/// failure happen on a deterministic cue.
#[derive(Debug)]
pub struct FailPoint {
    name: &'static str,
    /// The entire disarmed cost: one relaxed load of this flag.
    armed: AtomicBool,
    state: Mutex<Option<Armed>>,
}

impl FailPoint {
    /// A disarmed failpoint named `name`. Intended for the statics in
    /// [`sites`]; tests may also create private ones.
    pub const fn new(name: &'static str) -> Self {
        FailPoint {
            name,
            armed: AtomicBool::new(false),
            state: Mutex::new(None),
        }
    }

    /// The site's registry name (e.g. `"persist.write"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Evaluates the site. Disarmed this is one relaxed atomic load and
    /// returns [`Fault::None`]; armed, the schedule decides.
    #[inline]
    pub fn check(&self) -> Fault {
        // Relaxed is sufficient: `armed` is only a fast-path hint. A
        // stale `false` skips a just-armed site once (arming is async by
        // contract); a `true` proceeds to `check_armed`, which locks the
        // schedule mutex — the mutex, not this load, orders the schedule
        // contents.
        if !self.armed.load(Ordering::Relaxed) {
            return Fault::None;
        }
        self.check_armed()
    }

    #[cold]
    fn check_armed(&self) -> Fault {
        let mut state = self.lock();
        let Some(armed) = state.as_mut() else {
            return Fault::None;
        };
        let hit = armed.hits;
        armed.hits += 1;
        if armed
            .schedule
            .limit
            .is_some_and(|limit| armed.trips >= limit)
        {
            return Fault::None;
        }
        let acts = match armed.schedule.plan {
            Plan::Nth(n) => hit == n,
            Plan::Every(n) => (hit + 1) % n == 0,
            Plan::Probability(p) => armed.rng.chance(p),
            Plan::Always => true,
        };
        if !acts {
            return Fault::None;
        }
        armed.trips += 1;
        match armed.schedule.kind {
            Kind::Trip { payload } => Fault::Trip { payload },
            Kind::Sleep { ms } => Fault::Sleep { ms },
            Kind::Panic => Fault::Panic,
        }
    }

    /// Convenience wrapper for sites whose only latency response is a
    /// sleep: returns `Some(payload)` when the site must inject its
    /// failure, handles [`Fault::Sleep`] internally, and panics on
    /// [`Fault::Panic`] (that is the injected fault).
    pub fn fire(&self) -> Option<Option<u64>> {
        match self.check() {
            Fault::None => None,
            Fault::Trip { payload } => Some(payload),
            Fault::Sleep { ms } => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                None
            }
            Fault::Panic => panic!("chaos: injected panic at failpoint `{}`", self.name),
        }
    }

    /// Arms `schedule` on this site, replacing any previous arming and
    /// resetting the hit/trip counters.
    pub fn arm(&self, schedule: Schedule) {
        let rng = SplitMix64::new(schedule.seed);
        *self.lock() = Some(Armed {
            schedule,
            hits: 0,
            trips: 0,
            rng,
        });
        self.armed.store(true, Ordering::Release);
    }

    /// Disarms the site; subsequent checks are single-load no-ops.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Release);
        *self.lock() = None;
    }

    /// Whether a schedule is currently armed.
    pub fn is_armed(&self) -> bool {
        // Relaxed for the same reason as `check`: a point-in-time hint,
        // with the schedule itself synchronized by its mutex.
        self.armed.load(Ordering::Relaxed)
    }

    /// Evaluations since the current arming (0 when disarmed).
    pub fn hits(&self) -> u64 {
        self.lock().as_ref().map_or(0, |a| a.hits)
    }

    /// Faults injected since the current arming (0 when disarmed).
    pub fn trips(&self) -> u64 {
        self.lock().as_ref().map_or(0, |a| a.trips)
    }

    fn lock(&self) -> MutexGuard<'_, Option<Armed>> {
        // A panicking chaos test must not poison every later test: the
        // guarded state is a plain schedule, valid at every step.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The workspace's instrumented fault sites.
///
/// | site | guards | trip payload |
/// |------|--------|--------------|
/// | `persist.write` | checkpoint temp-write and rename | bytes written before the tear (`None` = fail before writing) |
/// | `persist.read`  | checkpoint read | bytes delivered before truncation (`None` = I/O error) |
/// | `adapt.spawn`   | re-fit worker thread spawn | — |
/// | `adapt.refit`   | the re-fit computation itself | — |
/// | `serve.tick_deadline` | fleet tick budget | surviving window budget (`None` = shed everything) |
/// | `journal.append` | observation journal frame append | bytes written before the tear (`None` = fail before writing) |
/// | `journal.fsync` | observation journal fsync | — |
/// | `snapshot.write` | fleet snapshot temp-write and rename | bytes written before the tear (`None` = fail before writing) |
pub mod sites {
    use super::FailPoint;

    /// Checkpoint writes: trips tear or abort the temp-file write, or
    /// abort between write and rename.
    pub static PERSIST_WRITE: FailPoint = FailPoint::new("persist.write");
    /// Checkpoint reads: trips truncate the delivered bytes or fail the
    /// read outright.
    pub static PERSIST_READ: FailPoint = FailPoint::new("persist.read");
    /// Re-fit worker spawn: trips simulate thread exhaustion.
    pub static ADAPT_SPAWN: FailPoint = FailPoint::new("adapt.spawn");
    /// The background re-fit itself: trips fail it, panics kill it.
    pub static ADAPT_REFIT: FailPoint = FailPoint::new("adapt.refit");
    /// Fleet tick deadline: trips clamp the tick's window budget,
    /// forcing load shedding.
    pub static SERVE_TICK_DEADLINE: FailPoint = FailPoint::new("serve.tick_deadline");
    /// Observation-journal appends: trips tear the frame mid-write or
    /// abort before any byte lands.
    pub static JOURNAL_APPEND: FailPoint = FailPoint::new("journal.append");
    /// Observation-journal fsync: trips fail the durability barrier.
    pub static JOURNAL_FSYNC: FailPoint = FailPoint::new("journal.fsync");
    /// Fleet-snapshot writes: trips tear or abort the temp-file write,
    /// or abort between write and rename.
    pub static SNAPSHOT_WRITE: FailPoint = FailPoint::new("snapshot.write");

    /// Every registered site, for sweeping and diagnostics.
    pub fn all() -> [&'static FailPoint; 8] {
        [
            &PERSIST_WRITE,
            &PERSIST_READ,
            &ADAPT_SPAWN,
            &ADAPT_REFIT,
            &SERVE_TICK_DEADLINE,
            &JOURNAL_APPEND,
            &JOURNAL_FSYNC,
            &SNAPSHOT_WRITE,
        ]
    }

    /// Looks a site up by its registry name.
    pub fn by_name(name: &str) -> Option<&'static FailPoint> {
        all().into_iter().find(|s| s.name() == name)
    }
}

/// Disarms every registered site.
pub fn disarm_all() {
    for site in sites::all() {
        site.disarm();
    }
}

/// Serializes chaos tests within one binary and guarantees a clean
/// registry on both entry and exit. Hold this for the whole test.
#[derive(Debug)]
pub struct ChaosGuard {
    _guard: MutexGuard<'static, ()>,
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        disarm_all();
    }
}

static EXCLUSIVE: Mutex<()> = Mutex::new(());

/// Acquires the global chaos lock, disarming every site first. Tests
/// that arm failpoints must hold the returned guard; `cargo test` runs
/// tests concurrently and the registry is process-global.
pub fn exclusive() -> ChaosGuard {
    let guard = EXCLUSIVE.lock().unwrap_or_else(PoisonError::into_inner);
    disarm_all();
    ChaosGuard { _guard: guard }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_site_never_faults_and_counts_nothing() {
        let fp = FailPoint::new("test.disarmed");
        for _ in 0..32 {
            assert_eq!(fp.check(), Fault::None);
        }
        assert_eq!(fp.hits(), 0);
        assert!(!fp.is_armed());
    }

    #[test]
    fn nth_trips_exactly_once_at_the_scheduled_hit() {
        let fp = FailPoint::new("test.nth");
        fp.arm(Schedule::nth(3));
        for hit in 0..8 {
            let fault = fp.check();
            if hit == 3 {
                assert_eq!(fault, Fault::Trip { payload: None }, "hit {hit}");
            } else {
                assert_eq!(fault, Fault::None, "hit {hit}");
            }
        }
        assert_eq!(fp.hits(), 8);
        assert_eq!(fp.trips(), 1);
        fp.disarm();
    }

    #[test]
    fn every_n_trips_periodically_and_times_caps_it() {
        let fp = FailPoint::new("test.every");
        fp.arm(Schedule::every(3).times(2));
        let faults: Vec<bool> = (0..12).map(|_| fp.check() != Fault::None).collect();
        let expected: Vec<bool> = (0..12).map(|h| h == 2 || h == 5).collect();
        assert_eq!(faults, expected, "trips at hits 2 and 5, then capped");
        assert_eq!(fp.trips(), 2);
        fp.disarm();
    }

    #[test]
    fn probability_schedules_replay_bit_identically_per_seed() {
        let fp = FailPoint::new("test.prob");
        let run = |seed: u64| -> Vec<bool> {
            fp.arm(Schedule::probability(0.35, seed));
            (0..64).map(|_| fp.check() != Fault::None).collect()
        };
        assert_eq!(run(11), run(11), "same seed, same fault sequence");
        assert_ne!(run(11), run(12), "different seed, different sequence");
        fp.disarm();
    }

    #[test]
    fn payload_and_kind_modifiers_are_delivered() {
        let fp = FailPoint::new("test.kinds");
        fp.arm(Schedule::always().payload(1234));
        assert_eq!(
            fp.check(),
            Fault::Trip {
                payload: Some(1234)
            }
        );
        fp.arm(Schedule::always().sleeping_ms(7));
        assert_eq!(fp.check(), Fault::Sleep { ms: 7 });
        fp.arm(Schedule::always().panicking());
        assert_eq!(fp.check(), Fault::Panic);
        fp.disarm();
    }

    #[test]
    fn fire_panics_on_panic_plans() {
        let fp = FailPoint::new("test.fire_panic");
        fp.arm(Schedule::always().panicking());
        let caught = std::panic::catch_unwind(|| fp.fire());
        assert!(caught.is_err(), "fire() must deliver the injected panic");
        fp.disarm();
    }

    #[test]
    fn rearming_resets_counters() {
        let fp = FailPoint::new("test.rearm");
        fp.arm(Schedule::nth(0));
        assert_ne!(fp.check(), Fault::None);
        fp.arm(Schedule::nth(0));
        assert_eq!(fp.hits(), 0);
        assert_ne!(fp.check(), Fault::None, "fresh arming trips again");
        fp.disarm();
    }

    #[test]
    fn registry_names_resolve() {
        let _chaos = exclusive();
        assert_eq!(sites::all().len(), 8);
        for site in sites::all() {
            assert!(std::ptr::eq(
                sites::by_name(site.name()).expect("registered"),
                site
            ));
            assert!(!site.is_armed(), "exclusive() must disarm everything");
        }
        assert!(sites::by_name("no.such.site").is_none());
    }
}
