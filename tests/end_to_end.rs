//! End-to-end integration tests spanning all workspace crates: dataset
//! generation → pre-processing → training → scoring → evaluation.

use cae_ensemble_repro::prelude::*;

/// Small-but-real configuration used across the integration tests.
fn quick_detector(dim: usize) -> CaeEnsemble {
    CaeEnsemble::new(
        CaeConfig::new(dim).embed_dim(12).window(12).layers(1),
        EnsembleConfig::new()
            .num_models(3)
            .epochs_per_model(3)
            .batch_size(32)
            .train_stride(8)
            .seed(1234),
    )
}

#[test]
fn fit_score_evaluate_on_ecg_like() {
    let ds = DatasetKind::Ecg.generate(Scale::Quick, 99);
    // ECG anomalies are morphology changes within the normal value range;
    // the detector needs a window covering most of a beat and a deeper
    // stack than the minimal smoke configuration.
    let mut det = CaeEnsemble::new(
        CaeConfig::new(ds.train.dim())
            .embed_dim(24)
            .window(16)
            .layers(2),
        EnsembleConfig::new()
            .num_models(4)
            .epochs_per_model(4)
            .batch_size(32)
            .train_stride(6)
            .seed(1234),
    );
    det.fit(&ds.train);
    let scores = det.score(&ds.test);
    assert_eq!(scores.len(), ds.test.len());
    let report = EvalReport::compute(&scores, &ds.test_labels);
    // The detector must beat random ranking on this easy synthetic set.
    assert!(
        report.roc_auc > 0.6,
        "ROC AUC {:.3} is not better than random",
        report.roc_auc
    );
    assert!(
        report.pr_auc > ds.outlier_ratio(),
        "PR AUC below prevalence"
    );
}

#[test]
fn every_dataset_flows_through_the_pipeline() {
    for kind in DatasetKind::all() {
        let ds = kind.generate(Scale::Quick, 6);
        // Keep the heavier datasets quick: slice the training series.
        let train = ds.train.slice(0, ds.train.len().min(800));
        let test = ds.test.slice(0, ds.test.len().min(400));
        let labels = &ds.test_labels[..test.len()];

        let mut det = quick_detector(train.dim());
        det.fit(&train);
        let scores = det.score(&test);
        assert_eq!(scores.len(), test.len(), "{}", kind.name());
        assert!(
            scores.iter().all(|s| s.is_finite() && *s >= 0.0),
            "{}: non-finite scores",
            kind.name()
        );
        let report = EvalReport::compute(&scores, labels);
        assert!(report.roc_auc.is_finite(), "{}", kind.name());
    }
}

#[test]
fn scores_rank_injected_outliers_above_normals() {
    let ds = DatasetKind::Smd.generate(Scale::Quick, 7);
    let train = ds.train.slice(0, 1500);
    let mut det = quick_detector(train.dim());
    det.fit(&train);
    let scores = det.score(&ds.test);

    let mean = |want: bool| -> f64 {
        let (mut sum, mut count) = (0.0f64, 0usize);
        for (s, &l) in scores.iter().zip(&ds.test_labels) {
            if l == want {
                sum += *s as f64;
                count += 1;
            }
        }
        sum / count.max(1) as f64
    };
    let outlier_mean = mean(true);
    let inlier_mean = mean(false);
    assert!(
        outlier_mean > inlier_mean,
        "labelled outliers ({outlier_mean:.4}) do not score above inliers ({inlier_mean:.4})"
    );
}

#[test]
fn ensemble_reproducibility_across_processes_worth_of_state() {
    // Same seed ⇒ identical members, scores and diversity value.
    let ds = DatasetKind::Ecg.generate(Scale::Quick, 8);
    let train = ds.train.slice(0, 800);
    let test = ds.test.slice(0, 300);

    let run = || {
        let mut det = quick_detector(train.dim());
        det.fit(&train);
        (det.score(&test), det.diversity_value(&test))
    };
    let (s1, d1) = run();
    let (s2, d2) = run();
    assert_eq!(s1, s2);
    assert_eq!(d1, d2);
}

#[test]
fn streaming_agrees_with_batch_on_real_dataset() {
    let ds = DatasetKind::Ecg.generate(Scale::Quick, 9);
    let train = ds.train.slice(0, 800);
    let test = ds.test.slice(0, 120);

    let mut det = quick_detector(train.dim());
    det.fit(&train);
    let batch = det.score(&test);

    let mut stream = StreamingDetector::new(&det);
    let w = det.model_config().window;
    for t in 0..test.len() {
        if let Some(s) = stream.push(test.observation(t)) {
            assert!(
                (s - batch[t]).abs() < 1e-3,
                "streaming/batch mismatch at t={t}: {s} vs {}",
                batch[t]
            );
        } else {
            assert!(t < w - 1, "warm-up longer than w−1");
        }
    }
}

#[test]
fn scaler_round_trips_through_umbrella_crate() {
    let ds = DatasetKind::Smap.generate(Scale::Quick, 10);
    let scaler = Scaler::fit(&ds.train);
    let z = scaler.transform(&ds.train);
    let back = scaler.inverse_transform(&z);
    for (a, b) in back.data().iter().zip(ds.train.data()).take(4096) {
        assert!((a - b).abs() < 1e-2, "{a} vs {b}");
    }
}
