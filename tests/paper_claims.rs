//! Integration tests pinning the paper's *qualitative claims* — the shapes
//! the reproduction must preserve even though absolute numbers differ from
//! the original GPU/real-data setup.

use cae_ensemble_repro::prelude::*;

fn base_configs(dim: usize) -> (CaeConfig, EnsembleConfig) {
    (
        CaeConfig::new(dim).embed_dim(12).window(12).layers(1),
        EnsembleConfig::new()
            .num_models(4)
            .epochs_per_model(3)
            .batch_size(32)
            .train_stride(6)
            .seed(77),
    )
}

/// Section 3.2 / Table 6: diversity-driven training yields a more diverse
/// ensemble than independent training.
#[test]
fn claim_diversity_driven_training_increases_div_f() {
    let ds = DatasetKind::Ecg.generate(Scale::Quick, 30);
    let train = ds.train.slice(0, 1000);
    let test = ds.test.slice(0, 400);
    let (mc, ec) = base_configs(train.dim());
    // Raw reconstruction target: Eq. 9 distances need a shared output
    // space (see `CaeEnsemble::diversity_value`).
    let mc = mc.target(cae_ensemble_repro::core::ReconstructionTarget::Raw);
    // Five epochs per member: with fewer, independently-trained models are
    // still near their random (diverse) inits and the comparison is noise.
    let ec = ec.epochs_per_model(5);

    let mut diverse = CaeEnsemble::new(mc.clone(), ec.clone().lambda(4.0));
    diverse.fit(&train);
    let mut independent = CaeEnsemble::new(mc, ec.diversity_driven(false));
    independent.fit(&train);

    let d = diverse.diversity_value(&test);
    let i = independent.diversity_value(&test);
    assert!(
        d > i,
        "diversity-driven DIV_F {d:.4} not above independent {i:.4}"
    );
}

/// Section 3.2.1 / Table 7: parameter transfer means later members start
/// partially trained — their first-epoch reconstruction loss is lower than
/// the first member's first-epoch loss.
#[test]
fn claim_parameter_transfer_warm_starts_members() {
    let ds = DatasetKind::Ecg.generate(Scale::Quick, 31);
    let train = ds.train.slice(0, 1000);
    let (mc, ec) = base_configs(train.dim());
    let mut ens = CaeEnsemble::new(mc, ec.beta(0.9));
    ens.fit(&train);

    let trace = ens.loss_trace();
    let first_epoch_loss = |model: usize| -> f32 {
        trace
            .iter()
            .find(|&&(m, e, _, _)| m == model && e == 0)
            .map(|&(_, _, j, _)| j)
            .expect("trace records every epoch")
    };
    let fresh = first_epoch_loss(0);
    let transferred = first_epoch_loss(1);
    assert!(
        transferred < fresh,
        "transferred member starts at J = {transferred:.4}, fresh at {fresh:.4}"
    );
}

/// Eq. 15: the median aggregation is robust — corrupting one member's
/// scores barely moves the ensemble scores.
#[test]
fn claim_median_aggregation_is_robust_to_one_bad_member() {
    let ds = DatasetKind::Ecg.generate(Scale::Quick, 32);
    let train = ds.train.slice(0, 800);
    let test = ds.test.slice(0, 300);
    let (mc, ec) = base_configs(train.dim());
    let mut ens = CaeEnsemble::new(mc, ec.num_models(5));
    ens.fit(&train);

    let mut per_member = ens.member_scores(&test);
    let clean = cae_ensemble_repro::data::scoring::median_scores(&per_member);
    // Corrupt one member with huge errors (an overfit/diverged model).
    for s in per_member[0].iter_mut() {
        *s += 1e6;
    }
    let corrupted = cae_ensemble_repro::data::scoring::median_scores(&per_member);
    let max_shift = clean
        .iter()
        .zip(corrupted.iter())
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    // The median over 5 members ignores a single corrupted series wherever
    // it was not already the middle element; the shift stays bounded by
    // the spread of the healthy members, not the 1e6 corruption.
    assert!(
        max_shift < 1e3,
        "median moved by {max_shift} under single-member corruption"
    );
}

/// Figure 16: more basic models do not hurt — accuracy with M members is
/// at least close to accuracy with 1 member, typically better.
#[test]
fn claim_more_members_do_not_degrade_accuracy() {
    let ds = DatasetKind::Ecg.generate(Scale::Quick, 33);
    let train = ds.train.slice(0, 1000);
    let (mc, ec) = base_configs(train.dim());
    let mut ens = CaeEnsemble::new(mc, ec.num_models(6));
    ens.fit(&train);

    let auc_with = |m: usize| {
        let scores = ens.score_with_first_members(&ds.test, m);
        cae_ensemble_repro::metrics::roc_auc(&scores, &ds.test_labels)
    };
    let single = auc_with(1);
    let full = auc_with(6);
    assert!(
        full > single - 0.05,
        "ensemble ROC {full:.3} collapsed versus single-member {single:.3}"
    );
}

/// Section 4.2.7 / Table 8: the online phase is fast — scoring one window
/// is orders of magnitude cheaper than training.
#[test]
fn claim_online_scoring_is_cheap() {
    let ds = DatasetKind::Ecg.generate(Scale::Quick, 34);
    let train = ds.train.slice(0, 800);
    let (mc, ec) = base_configs(train.dim());
    let mut ens = CaeEnsemble::new(mc, ec);
    let t0 = std::time::Instant::now();
    ens.fit(&train);
    let fit_time = t0.elapsed();

    let mut stream = StreamingDetector::new(&ens);
    for t in 0..12 {
        stream.push(ds.test.observation(t));
    }
    let t1 = std::time::Instant::now();
    let n = 100;
    for t in 12..12 + n {
        stream.push(ds.test.observation(t));
    }
    let per_window = t1.elapsed() / n as u32;
    assert!(
        per_window.as_secs_f64() * 200.0 < fit_time.as_secs_f64(),
        "per-window scoring ({per_window:?}) is not ≪ training ({fit_time:?})"
    );
}

/// Interval labels (Figures 11–12): within a labelled anomaly interval the
/// score peaks align with a minority of observations.
#[test]
fn claim_interval_scores_are_peaked_not_uniform() {
    let ds = DatasetKind::Ecg.generate(Scale::Quick, 35);
    let (mc, ec) = base_configs(ds.train.dim());
    let mut ens = CaeEnsemble::new(mc, ec);
    ens.fit(&ds.train);
    let scores = ens.score(&ds.test);

    // Find the labelled intervals; compare each interval's max to its
    // median score: a peaked profile has max ≫ median.
    let mut t = 0;
    let mut peaked = 0usize;
    let mut total = 0usize;
    while t < ds.test_labels.len() {
        if ds.test_labels[t] {
            let start = t;
            while t < ds.test_labels.len() && ds.test_labels[t] {
                t += 1;
            }
            let interval = &scores[start..t];
            if interval.len() >= 8 {
                let mut sorted = interval.to_vec();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let median = sorted[sorted.len() / 2];
                let max = *sorted.last().expect("non-empty");
                total += 1;
                if max > 2.0 * median.max(1e-6) {
                    peaked += 1;
                }
            }
        } else {
            t += 1;
        }
    }
    assert!(
        total >= 3,
        "need at least a few long intervals, found {total}"
    );
    assert!(
        peaked * 2 >= total,
        "only {peaked}/{total} intervals show peaked score profiles"
    );
}
