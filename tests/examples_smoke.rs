//! Smoke coverage for the `examples/` directory.
//!
//! Compilation of every example is enforced by CI (`cargo build
//! --examples`; see `.github/workflows/ci.yml`), and the release job runs
//! `examples/quickstart.rs` end-to-end. This test keeps fast local
//! equivalents: miniatures of the quickstart, fleet-serving and
//! online-adaptation pipelines small enough for `cargo test -q` to
//! exercise the same API surfaces in seconds.

use cae_ensemble_repro::prelude::*;

/// The examples CI builds; `quickstart` is additionally run end-to-end.
const EXAMPLES: [&str; 10] = [
    "fault_tolerant_fleet",
    "fleet_serving",
    "hyperparameter_tuning",
    "observability",
    "online_adaptation",
    "quickstart",
    "restart_recovery",
    "server_monitoring",
    "spacecraft_telemetry",
    "streaming_detection",
];

#[test]
fn example_sources_are_present() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    for name in EXAMPLES {
        let path = dir.join(format!("{name}.rs"));
        assert!(
            path.is_file(),
            "examples/{name}.rs is missing; update CI and this list"
        );
    }
    let on_disk = std::fs::read_dir(&dir)
        .expect("examples/ directory exists")
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "rs")
        })
        .count();
    assert_eq!(
        on_disk,
        EXAMPLES.len(),
        "examples/ gained or lost a file; update CI and this list"
    );
}

#[test]
fn quickstart_pipeline_runs_on_a_tiny_series() {
    // Miniature of examples/quickstart.rs: same signal family, same
    // pipeline, ~10x smaller so it runs fast in the test suite.
    let wave = |t: usize| (t as f32 * 0.2).sin() + 0.4 * (t as f32 * 0.05).sin();
    let train = TimeSeries::univariate((0..300).map(wave).collect());

    let mut values: Vec<f32> = (0..160).map(wave).collect();
    values[60] += 5.0; // point spike
    for v in values.iter_mut().take(125).skip(110) {
        *v += 2.0; // level shift interval
    }
    let test = TimeSeries::univariate(values);
    let mut labels = vec![false; 160];
    labels[60] = true;
    labels[110..125].fill(true);

    let model_cfg = CaeConfig::new(1).embed_dim(8).window(16).layers(1);
    let ens_cfg = EnsembleConfig::new()
        .num_models(2)
        .epochs_per_model(3)
        .lambda(2.0)
        .beta(0.5)
        .seed(7);
    let mut detector = CaeEnsemble::new(model_cfg, ens_cfg);
    detector.fit(&train);

    let scores = detector.score(&test);
    assert_eq!(scores.len(), 160);
    assert!(
        scores.iter().all(|s| s.is_finite()),
        "scores must be finite"
    );

    let report = EvalReport::compute(&scores, &labels);
    assert!(
        report.roc_auc > 0.7,
        "tiny quickstart failed to separate injected outliers: {report}"
    );
}

#[test]
fn fleet_serving_pipeline_runs_on_a_tiny_fleet() {
    // Miniature of examples/fleet_serving.rs: train → save → load →
    // serve a small fleet, asserting the loaded ensemble and the fleet
    // scores match the batch scorer bit-exactly.
    let wave = |t: usize, phase: f32| (t as f32 * 0.25 + phase).sin();
    let train = TimeSeries::univariate((0..260).map(|t| wave(t, 0.0)).collect());

    let mut detector = CaeEnsemble::new(
        CaeConfig::new(1).embed_dim(8).window(8).layers(1),
        EnsembleConfig::new()
            .num_models(2)
            .epochs_per_model(2)
            .batch_size(16)
            .train_stride(2)
            .seed(13),
    );
    detector.fit(&train);

    let path = std::env::temp_dir().join(format!(
        "cae_examples_smoke_fleet_{}.caee",
        std::process::id()
    ));
    detector.save(&path).expect("checkpoint write");
    let ensemble = CaeEnsemble::load(&path).expect("checkpoint read");
    let _ = std::fs::remove_file(&path);

    let w = ensemble.model_config().window;
    // n_win = 64 aligns the fleet's 64-stream chunks with the batch
    // scorer's inference chunks — the comparison is bit-exact.
    let len = (w - 1) + 64;
    let series: Vec<TimeSeries> = (0..64)
        .map(|k| TimeSeries::univariate((0..len).map(|t| wave(t, k as f32 * 0.09)).collect()))
        .collect();

    let mut fleet = FleetDetector::new(ensemble);
    let ids: Vec<StreamId> = (0..64).map(|_| fleet.add_stream()).collect();
    let mut out = Vec::new();
    let mut per_stream: Vec<Vec<f32>> = vec![Vec::new(); 64];
    for t in 0..len {
        for (k, &id) in ids.iter().enumerate() {
            fleet
                .push(id, series[k].observation(t))
                .expect("live stream");
        }
        fleet.tick(&mut out);
        for &(id, score) in &out {
            let k = ids.iter().position(|&i| i == id).expect("known session");
            per_stream[k].push(score);
        }
    }

    for (k, s) in series.iter().enumerate() {
        let batch_scores = detector.score(s); // original, not the loaded copy
        assert_eq!(
            per_stream[k],
            batch_scores[w - 1..],
            "fleet stream {k} diverged from the trained ensemble's batch scorer"
        );
    }
}

#[test]
fn fault_tolerant_fleet_pipeline_quarantines_and_recovers() {
    // Miniature of examples/fault_tolerant_fleet.rs: a NaN-storming
    // stream is quarantined, recovers on the pinned schedule once the
    // input turns clean, and then scores bit-exactly like a stream that
    // was never faulty; a torn primary checkpoint is recovered from the
    // last-good copy.
    use cae_ensemble_repro::chaos::{
        self, Delivery, FaultWindow, InputFault, Schedule, StreamFaultInjector,
    };

    let wave = |t: usize| (t as f32 * 0.23).sin() + 0.3 * (t as f32 * 0.05).cos();
    let train = TimeSeries::univariate((0..260).map(wave).collect());
    let mut detector = CaeEnsemble::new(
        CaeConfig::new(1).embed_dim(4).window(8).layers(1),
        EnsembleConfig::new()
            .num_models(2)
            .epochs_per_model(1)
            .batch_size(16)
            .train_stride(2)
            .seed(43),
    );
    detector.fit(&train);

    // Torn primary checkpoint → last-good fallback, with the primary's
    // typed error retained.
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let primary = dir.join(format!("cae_examples_smoke_fault_primary_{pid}.caee"));
    let last_good = dir.join(format!("cae_examples_smoke_fault_last_good_{pid}.caee"));
    detector.save(&primary).expect("primary checkpoint");
    detector.save(&last_good).expect("last-good checkpoint");
    let _chaos = chaos::exclusive();
    chaos::sites::PERSIST_READ.arm(Schedule::nth(0).payload(16));
    let recovered =
        CaeEnsemble::load_with_fallback(&primary, &last_good).expect("fallback recovers");
    assert!(recovered.primary_error.is_some(), "primary error retained");
    let _ = std::fs::remove_file(&primary);
    let _ = std::fs::remove_file(&last_good);
    let ensemble = std::sync::Arc::new(recovered.value);

    // Serve one faulty and one clean stream in separate fleets so the
    // convergence comparison is exact.
    let health = HealthConfig::default();
    let w = ensemble.model_config().window;
    let (from, to) = (w + 4, w + 14);
    let converge_at = to + health.recovery_pushes(w) - 1;
    let mut faulty = FleetDetector::with_health(ensemble.clone(), health);
    let mut clean = FleetDetector::with_health(ensemble, health);
    let f_id = faulty.add_stream();
    let c_id = clean.add_stream();
    assert_eq!(f_id, c_id);

    let mut inj = StreamFaultInjector::new(FaultWindow::new(InputFault::NanStorm, from, to), 5);
    let (mut fo, mut co) = (Vec::new(), Vec::new());
    let mut quarantined_seen = false;
    for t in 0..converge_at + 8 {
        let obs = [wave(t)];
        match inj.next(t, &obs) {
            Delivery::Deliver(row) => {
                faulty.push(f_id, &row).expect("well-formed row");
            }
            other => panic!("NaN storm always delivers: {other:?}"),
        }
        clean.push(c_id, &obs).expect("live stream");
        faulty.tick(&mut fo);
        clean.tick(&mut co);
        assert!(fo.iter().all(|&(_, s)| s.is_finite()), "t={t}");
        quarantined_seen |= faulty.stream_health(f_id) == StreamHealth::Quarantined;
        if t >= converge_at {
            assert_eq!(fo, co, "t={t}: not bit-exact after the pinned recovery");
        }
    }
    assert!(quarantined_seen, "the storm must quarantine the stream");
    let report = faulty.health_report();
    assert_eq!(report.quarantine_events, 1);
    assert_eq!(report.recoveries, 1);
    assert!(report.faulty_observations >= (to - from) as u64);
    assert_eq!(report.streams_healthy, 1);

    // Checkpoint failure mid-re-fit: retried with backoff, then the
    // publish falls back to in-memory and the error chain is retained.
    let ckpt = dir.join(format!("cae_examples_smoke_fault_ckpt_{pid}.caee"));
    let mut adapt = AdaptationController::new(
        faulty.ensemble(),
        &[0.01; 32], // tiny drift band: every probe score trips it
        AdaptationConfig::new()
            .reservoir_capacity(32)
            .min_observations(16)
            .refit(RefitOptions::warm(1, 5))
            .checkpoint_path(ckpt.clone())
            .checkpoint_retries(1)
            .backoff_ms(1, 2),
    );
    chaos::sites::PERSIST_WRITE.arm(Schedule::always());
    let mut launched = false;
    for t in 0..20 {
        launched |= adapt.observe(faulty.ensemble(), &[wave(t)], 10.0);
    }
    assert!(launched, "drift must trip the re-fit");
    let published = adapt.wait();
    chaos::sites::PERSIST_WRITE.disarm();
    assert!(published.is_some(), "must publish despite the dead disk");
    assert!(adapt.last_checkpoint_error().is_some(), "chain retained");
    assert_eq!(adapt.stats().checkpoint_fallbacks, 1);
    assert!(!ckpt.exists(), "no torn artifact at the final path");
}

#[test]
fn restart_recovery_pipeline_reconverges_bit_exactly() {
    // Miniature of examples/restart_recovery.rs: journal-then-apply
    // serving, a periodic snapshot carrying the journal position and
    // adaptation state, a crash that tears an in-flight journal frame,
    // then recovery via restore + replay — and bit-exact parity with an
    // uninterrupted run.
    use cae_ensemble_repro::adapt::AdaptationState;
    use cae_ensemble_repro::chaos::{self, Schedule};
    use cae_ensemble_repro::data::{JournalConfig, JournalRecord, ObservationJournal};
    use cae_ensemble_repro::serve::FleetSnapshot;
    use std::sync::Arc;

    let wave = |t: usize| (t as f32 * 0.27).sin();
    let train = TimeSeries::univariate((0..200).map(wave).collect());
    let mut detector = CaeEnsemble::new(
        CaeConfig::new(1).embed_dim(4).window(8).layers(1),
        EnsembleConfig::new()
            .num_models(2)
            .epochs_per_model(1)
            .batch_size(16)
            .train_stride(2)
            .seed(47),
    );
    detector.fit(&train);
    let ensemble = Arc::new(detector);

    let adapt_cfg = || {
        AdaptationConfig::new()
            .reservoir_capacity(32)
            .min_observations(16)
            .band_sigma(1.0e6) // never trips: deterministic bookkeeping only
    };
    let baseline = [0.1_f32; 16];
    let dir =
        std::env::temp_dir().join(format!("cae_examples_smoke_restart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // One shared step function keeps the live run, the crashed run and
    // the recovered run on the identical workload.
    let step = |t: usize,
                journal: &mut ObservationJournal,
                fleet: &mut FleetDetector,
                ctl: &mut AdaptationController,
                id: StreamId|
     -> Result<Vec<(StreamId, f32)>, ()> {
        let (slot, generation) = id.raw_parts();
        journal
            .append(&JournalRecord::Observation {
                slot,
                generation,
                values: vec![wave(t)],
            })
            .map_err(|_| ())?;
        fleet.push(id, &[wave(t)]).expect("live stream");
        journal.append(&JournalRecord::Tick).map_err(|_| ())?;
        let mut out = Vec::new();
        fleet.tick(&mut out);
        let ens = fleet.ensemble().clone();
        for &(_, score) in &out {
            ctl.observe(&ens, &[score], score);
        }
        Ok(out)
    };

    let open_journal = || {
        ObservationJournal::open(dir.join("journal"), JournalConfig::new().segment_bytes(256))
            .expect("journal open")
    };
    let (snap_at, crash_at, steps) = (12usize, 17usize, 24usize);

    // Live run: journal, snapshot at `snap_at`, tear a frame at
    // `crash_at`, drop everything.
    let _chaos = chaos::exclusive();
    let mut journal = open_journal();
    let mut fleet = FleetDetector::new(ensemble.clone());
    let mut ctl = AdaptationController::new(&ensemble, &baseline, adapt_cfg());
    let id = fleet.add_stream();
    let (slot, generation) = id.raw_parts();
    journal
        .append(&JournalRecord::StreamOpened { slot, generation })
        .expect("journal open record");
    let snap_path = dir.join("fleet.caef");
    for t in 0..crash_at {
        step(t, &mut journal, &mut fleet, &mut ctl, id).expect("pre-crash step");
        if t + 1 == snap_at {
            fleet
                .snapshot()
                .with_journal_position(journal.position())
                .with_adaptation_state(ctl.export_state().encode())
                .save(&snap_path)
                .expect("periodic snapshot");
        }
    }
    chaos::sites::JOURNAL_APPEND.arm(Schedule::nth(0).payload(5));
    assert!(
        step(crash_at, &mut journal, &mut fleet, &mut ctl, id).is_err(),
        "armed append must crash"
    );
    chaos::disarm_all();
    drop((journal, fleet, ctl));

    // Recover: snapshot → restore → replay the journal suffix.
    let mut journal = open_journal();
    assert_eq!(journal.truncated_bytes(), 5, "torn tail truncated");
    let snap = FleetSnapshot::load(&snap_path).expect("snapshot load");
    let mut fleet = FleetDetector::restore(ensemble.clone(), &snap).expect("fleet restore");
    let state = AdaptationState::decode(snap.adaptation_state().expect("state in snapshot"))
        .expect("state decode");
    let mut ctl =
        AdaptationController::restore(&ensemble, adapt_cfg(), &state).expect("ctl restore");
    let records = journal
        .replay_from(snap.journal_position().expect("position in snapshot"))
        .expect("journal replay");
    assert_eq!(records.len(), 2 * (crash_at - snap_at), "suffix length");
    {
        let ctl = &mut ctl;
        let live = ensemble.clone();
        fleet
            .replay_journal_with(&records, |_, score| {
                ctl.observe(&live, &[score], score);
            })
            .expect("replay through the serving path");
    }

    // Reference run: same workload, never crashes, scratch journal.
    let mut ref_journal = ObservationJournal::open(
        dir.join("reference-journal"),
        JournalConfig::new().segment_bytes(256),
    )
    .expect("reference journal");
    let mut ref_fleet = FleetDetector::new(ensemble.clone());
    let mut ref_ctl = AdaptationController::new(&ensemble, &baseline, adapt_cfg());
    assert_eq!(ref_fleet.add_stream(), id);
    ref_journal
        .append(&JournalRecord::StreamOpened { slot, generation })
        .expect("reference journal");
    for t in 0..steps {
        let ref_out =
            step(t, &mut ref_journal, &mut ref_fleet, &mut ref_ctl, id).expect("reference");
        if t >= crash_at {
            let out = step(t, &mut journal, &mut fleet, &mut ctl, id).expect("post-recovery");
            assert_eq!(out, ref_out, "t={t}: post-recovery scores diverge");
        }
    }
    assert_eq!(fleet.snapshot().encode(), ref_fleet.snapshot().encode());
    assert_eq!(ctl.export_state(), ref_ctl.export_state());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn observability_pipeline_mirrors_fault_counts_and_exports() {
    // Miniature of examples/observability.rs: an instrumented fleet
    // survives a NaN burst; the registry counters mirror the health
    // report and the injected ground truth exactly, the span-trace ring
    // orders its tick events, and both exporters carry the catalog.
    let wave = |t: usize| (t as f32 * 0.23).sin();
    let train = TimeSeries::univariate((0..260).map(wave).collect());
    let mut detector = CaeEnsemble::new(
        CaeConfig::new(1).embed_dim(4).window(8).layers(1),
        EnsembleConfig::new()
            .num_models(2)
            .epochs_per_model(1)
            .batch_size(16)
            .train_stride(2)
            .seed(19),
    );
    detector.fit(&train);

    let registry = MetricsRegistry::new();
    let mut fleet = FleetDetector::with_observability(detector, HealthConfig::default(), &registry);
    let id = fleet.add_stream();

    let ring = TraceRing::new(16);
    let span = ring.span("tick");
    let lane = ring.lane();

    let mut out = Vec::new();
    let mut injected = 0u64;
    for t in 0..40 {
        let burst = (14..18).contains(&t);
        injected += u64::from(burst);
        let obs = if burst { [f32::NAN] } else { [wave(t)] };
        lane.enter(span, t as u32);
        fleet.push(id, &obs).expect("NaN rows are absorbed");
        fleet.tick(&mut out);
        lane.exit(span, t as u32);
    }

    let report = fleet.health_report();
    assert_eq!(report.faulty_observations, injected);
    let snapshot = registry.snapshot();
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .expect("counter registered")
    };
    assert_eq!(counter("serve_faulty_observations_total"), injected);
    assert_eq!(
        counter("serve_quarantine_events_total"),
        report.quarantine_events
    );
    assert_eq!(counter("serve_recoveries_total"), report.recoveries);

    // Both exporters carry the catalog, and the trace ring kept its
    // per-tick enter/exit pairs in global sequence order.
    let json = snapshot.to_json();
    let prom = snapshot.to_prometheus();
    for name in [
        "serve_faulty_observations_total",
        "serve_push_latency_ns",
        "serve_tick_latency_ns",
    ] {
        assert!(json.contains(name), "{name} missing from JSON export");
        assert!(prom.contains(name), "{name} missing from Prometheus export");
    }
    let dump = ring.dump();
    assert!(!dump.is_empty());
    assert!(
        dump.windows(2).all(|w| w[0].seq < w[1].seq),
        "trace dump must be sequence-ordered"
    );
}

#[test]
fn online_adaptation_pipeline_adapts_to_drift() {
    // Miniature of examples/online_adaptation.rs: train → serve → drift →
    // background warm re-fit → hot swap → recovery, on a ~5x smaller
    // model so it runs in seconds under `cargo test -q`.
    let wave = |t: usize, drifted: bool| {
        let (f1, scale, level) = if drifted {
            (0.34, 1.5, 0.6)
        } else {
            (0.25, 1.0, 0.0)
        };
        scale * ((t as f32 * f1).sin() + 0.5 * (t as f32 * 0.07).sin() + level)
    };
    let train = TimeSeries::univariate((0..300).map(|t| wave(t, false)).collect());
    let mut detector = CaeEnsemble::new(
        CaeConfig::new(1).embed_dim(8).window(8).layers(1),
        EnsembleConfig::new()
            .num_models(2)
            .epochs_per_model(3)
            .batch_size(16)
            .train_stride(2)
            .seed(29),
    );
    detector.fit(&train);
    let baseline = detector.score(&train);

    let mut fleet = FleetDetector::new(detector);
    let id = fleet.add_stream();
    let mut adapt = AdaptationController::new(
        fleet.ensemble(),
        &baseline[8..],
        AdaptationConfig::new()
            .reservoir_capacity(160)
            .min_observations(120)
            .ewma_alpha(0.1)
            .band_sigma(1.5)
            .refit(RefitOptions::warm(2, 29)),
    );

    let mut out = Vec::new();
    let mut started = false;
    for t in 0..400 {
        fleet.push(id, &[wave(t, t >= 150)]).expect("live stream");
        fleet.tick(&mut out);
        if t >= fleet.window() - 1 {
            assert_eq!(out.len(), 1, "serving missed a tick at t={t}");
        }
        for &(_, score) in &out {
            started |= adapt.observe(fleet.ensemble(), &[wave(t, t >= 150)], score);
        }
        if started {
            break;
        }
    }
    assert!(started, "drift never tripped a background re-fit");
    let adapted = adapt.wait().expect("re-fit publishes an ensemble");
    fleet.swap_ensemble(adapted);
    assert_eq!(fleet.swap_count(), 1);

    let drifted = TimeSeries::univariate((0..120).map(|t| wave(t, true)).collect());
    let mean = |s: &[f32]| s.iter().sum::<f32>() / s.len() as f32;
    let stale = mean(&fleet.retired_ensemble().expect("swapped").score(&drifted));
    let fresh = mean(&fleet.ensemble().score(&drifted));
    assert!(
        fresh < stale,
        "adapted model must score the drifted regime lower: {fresh} vs {stale}"
    );
}
