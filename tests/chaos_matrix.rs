//! The seeded chaos suite: ≥500 deterministic fault scenarios across the
//! serving and persistence tiers.
//!
//! Three matrices, each replayable from its scenario seed:
//!
//! * **Input faults** (400 scenarios): every [`InputFault`] family ×
//!   seeds × health configs × fault-window lengths, driven through a
//!   4-stream fleet against a clean reference fleet. Invariants: no
//!   panic, no non-finite score ever emitted, and bit-exact convergence
//!   with the reference within the pinned recovery budget once the fault
//!   clears.
//! * **Persistence faults** (≈130 scenarios): torn checkpoint writes at
//!   swept offsets, pre-rename crashes, probabilistic write storms, and
//!   truncated reads — the prior checkpoint always survives, errors are
//!   typed, `load_with_fallback` recovers.
//! * **Adaptation faults** (21 scenarios): injected re-fit failures,
//!   worker panics and spawn failures — retries stay within budget,
//!   exhaustion falls back to the last-good ensemble, serving never
//!   stops.
//! * **Durability faults** (≥60 scenarios): journal append tears and
//!   fsync failures under probabilistic storms, torn fleet-snapshot
//!   writes — every failure is typed, every re-open truncates back to a
//!   frame boundary, and the committed prefix replays intact. (The
//!   every-offset sweeps live in `crates/data/tests/journal_crash.rs`
//!   and `crates/serve/tests/snapshot_crash.rs`; the end-to-end
//!   restart-parity proof in `tests/restart_recovery.rs`.)

use cae_ensemble_repro::adapt::{AdaptationConfig, AdaptationController};
use cae_ensemble_repro::chaos::{
    self, Delivery, FaultWindow, InputFault, Schedule, StreamFaultInjector,
};
use cae_ensemble_repro::core::{
    CaeConfig, CaeEnsemble, EnsembleConfig, PersistError, RefitOptions,
};
use cae_ensemble_repro::data::{Detector, TimeSeries};
use cae_ensemble_repro::serve::{FleetDetector, HealthConfig, PushError, StreamId};
use std::path::PathBuf;
use std::sync::Arc;

const STREAMS: usize = 4;

fn clean(t: usize, k: usize) -> f32 {
    (t as f32 * 0.3 + k as f32 * 0.9).sin() + 0.2 * (t as f32 * 0.07).cos()
}

fn fitted(seed: u64) -> Arc<CaeEnsemble> {
    let series = TimeSeries::univariate((0..160).map(|t| clean(t, 0)).collect());
    let mut ens = CaeEnsemble::new(
        CaeConfig::new(1).embed_dim(4).window(8).layers(1),
        EnsembleConfig::new()
            .num_models(2)
            .epochs_per_model(1)
            .batch_size(16)
            .train_stride(2)
            .seed(seed),
    );
    ens.fit(&series);
    Arc::new(ens)
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cae_chaos_matrix_{tag}_{}.caee",
        std::process::id()
    ))
}

/// One input-fault scenario: all four streams hit by the same fault
/// family over the same window, each with its own corruption seed.
/// Returns the number of faulty observations the fleet recorded.
fn run_input_scenario(
    ens: &Arc<CaeEnsemble>,
    kind: InputFault,
    scenario_seed: u64,
    health: HealthConfig,
    fault_len: usize,
) -> u64 {
    let w = ens.model_config().window;
    let fault_from = w + 4;
    let fault_to = fault_from + fault_len;
    let converge_at = fault_to + health.recovery_pushes(w) - 1;
    let ticks = converge_at + 10;

    let mut faulty = FleetDetector::with_health(ens.clone(), health);
    let mut reference = FleetDetector::with_health(ens.clone(), health);
    let f_ids: Vec<StreamId> = (0..STREAMS).map(|_| faulty.add_stream()).collect();
    let r_ids: Vec<StreamId> = (0..STREAMS).map(|_| reference.add_stream()).collect();
    assert_eq!(f_ids, r_ids, "both fleets mint identical session ids");

    let window = FaultWindow::new(kind, fault_from, fault_to);
    let mut injectors: Vec<StreamFaultInjector> = (0..STREAMS)
        .map(|k| StreamFaultInjector::new(window, scenario_seed ^ (k as u64).wrapping_mul(0x9e37)))
        .collect();

    let (mut fo, mut ro) = (Vec::new(), Vec::new());
    for t in 0..ticks {
        for k in 0..STREAMS {
            let obs = [clean(t, k)];
            match injectors[k].next(t, &obs) {
                Delivery::Deliver(row) => match faulty.push(f_ids[k], &row) {
                    Ok(_) => {}
                    Err(PushError::DimMismatch { .. }) => {
                        assert_eq!(kind, InputFault::DimGarble, "t={t} k={k}");
                    }
                    Err(e) => panic!("unexpected push error {e} at t={t} k={k}"),
                },
                Delivery::DeliverTwice(row) => {
                    faulty.push(f_ids[k], &row).expect("duplicate delivery");
                    faulty.push(f_ids[k], &row).expect("duplicate delivery");
                }
                Delivery::Dropped => {}
            }
            reference.push(r_ids[k], &obs).expect("reference push");
        }
        faulty.tick(&mut fo);
        reference.tick(&mut ro);
        for &(id, score) in &fo {
            assert!(
                score.is_finite(),
                "{kind:?} seed={scenario_seed} t={t}: non-finite score on {id:?}"
            );
        }
        if t >= converge_at {
            assert_eq!(
                fo, ro,
                "{kind:?} seed={scenario_seed} len={fault_len} t={t}: \
                 not bit-exact after the pinned recovery budget (tick {converge_at})"
            );
        }
    }
    let report = faulty.health_report();
    assert_eq!(
        report.streams_healthy, STREAMS as u64,
        "{kind:?} seed={scenario_seed}: all streams must end healthy"
    );
    report.faulty_observations
}

#[test]
fn input_fault_matrix_400_scenarios_never_panic_and_reconverge_bit_exactly() {
    let ens = fitted(17);
    // Two health regimes: near-default (flat-line threshold lowered so
    // ≤24-tick windows can trip it) and a hair-trigger one.
    let configs = [
        HealthConfig::default().flatline_after(6),
        HealthConfig::default()
            .suspect_after(1)
            .quarantine_after(3)
            .flatline_after(4)
            .probe_after(2),
    ];
    let fault_lens = [1usize, 5, 12, 24];
    let mut scenarios = 0u64;
    for kind in InputFault::ALL {
        for seed in 0..10u64 {
            for (ci, &health) in configs.iter().enumerate() {
                for &len in &fault_lens {
                    let scenario_seed =
                        seed ^ ((ci as u64) << 32) ^ ((len as u64) << 40) ^ (scenarios << 48);
                    let faults = run_input_scenario(&ens, kind, scenario_seed, health, len);
                    // Dropout and Duplicate shape the transport without
                    // producing a faulty observation; the other families
                    // must be detected.
                    match kind {
                        InputFault::Dropout | InputFault::Duplicate => {
                            assert_eq!(faults, 0, "{kind:?} must not be charged as faulty");
                        }
                        InputFault::NanStorm | InputFault::DimGarble => {
                            assert!(faults > 0, "{kind:?} went undetected");
                        }
                        InputFault::FlatLine => {
                            // Detected only when the freeze outlasts the
                            // flat-line threshold.
                            if (len as u32) > health.flatline_after {
                                assert!(faults > 0, "long flat-line went undetected");
                            }
                        }
                    }
                    scenarios += 1;
                }
            }
        }
    }
    assert_eq!(scenarios, 400);
}

/// Telemetry parity under fire: with a metrics registry attached, a
/// seeded NaN storm must leave the registry, the health report, and the
/// injector-side ground truth agreeing on every fault count — the
/// counters are an exact mirror of what was injected, not a sample.
#[test]
fn nan_storm_registry_counters_match_injected_fault_counts() {
    use cae_ensemble_repro::obs::MetricsRegistry;

    let ens = fitted(61);
    let registry = MetricsRegistry::new();
    let health = HealthConfig::default().flatline_after(6);
    let mut fleet = FleetDetector::with_observability(ens.clone(), health, &registry);
    let ids: Vec<StreamId> = (0..STREAMS).map(|_| fleet.add_stream()).collect();

    let w = ens.model_config().window;
    let window = FaultWindow::new(InputFault::NanStorm, w + 4, w + 16);
    let mut injectors: Vec<StreamFaultInjector> = (0..STREAMS)
        .map(|k| StreamFaultInjector::new(window, 0xC0FFEE ^ (k as u64).wrapping_mul(7919)))
        .collect();

    // Ground truth: every delivered row carrying a non-finite value is
    // exactly one faulty observation.
    let mut injected = 0u64;
    let mut out = Vec::new();
    for t in 0..w + 40 {
        for k in 0..STREAMS {
            let obs = [clean(t, k)];
            match injectors[k].next(t, &obs) {
                Delivery::Deliver(row) => {
                    injected += u64::from(row.iter().any(|v| !v.is_finite()));
                    fleet.push(ids[k], &row).expect("NaN rows are absorbed");
                }
                Delivery::DeliverTwice(row) => {
                    injected += 2 * u64::from(row.iter().any(|v| !v.is_finite()));
                    fleet.push(ids[k], &row).expect("duplicate delivery");
                    fleet.push(ids[k], &row).expect("duplicate delivery");
                }
                Delivery::Dropped => {}
            }
        }
        fleet.tick(&mut out);
    }
    assert!(injected > 0, "the storm must actually inject NaNs");

    let report = fleet.health_report();
    assert_eq!(
        report.faulty_observations, injected,
        "health report disagrees with the injected fault count"
    );

    let snapshot = registry.snapshot();
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or_else(|| panic!("counter {name} not registered"), |&(_, v)| v)
    };
    assert_eq!(counter("serve_faulty_observations_total"), injected);
    assert_eq!(
        counter("serve_quarantine_events_total"),
        report.quarantine_events
    );
    assert_eq!(counter("serve_recoveries_total"), report.recoveries);
    assert_eq!(counter("serve_shed_windows_total"), report.shed_windows);
    assert_eq!(
        counter("serve_suppressed_scores_total"),
        report.suppressed_scores
    );
    // A 12-tick four-stream storm must have tripped quarantines and,
    // with 30+ clean ticks after it, recovered every stream.
    assert!(report.quarantine_events > 0, "storm never quarantined");
    assert_eq!(report.streams_healthy, STREAMS as u64);
    assert!(report.recoveries > 0, "streams never recovered");
}

#[test]
fn persistence_fault_matrix_survives_every_schedule() {
    let _guard = chaos::exclusive();
    let path = tmp_path("persist");
    let _ = std::fs::remove_file(&path);
    let good = fitted(23);
    let replacement = fitted(31);
    good.save(&path).expect("baseline checkpoint");
    let good_bytes = std::fs::read(&path).expect("baseline bytes");
    let len = good_bytes.len();
    let mut scenarios = 0u64;

    // Torn writes at ~60 swept offsets plus the pre-rename crash.
    let step = (len / 60).max(1);
    for offset in (0..=len).step_by(step) {
        chaos::sites::PERSIST_WRITE.arm(Schedule::nth(0).payload(offset as u64));
        assert!(
            matches!(replacement.save(&path), Err(PersistError::Io(_))),
            "offset {offset}: torn write must surface as Io"
        );
        assert_eq!(
            std::fs::read(&path).expect("prior readable"),
            good_bytes,
            "offset {offset}: prior checkpoint corrupted"
        );
        scenarios += 1;
    }
    chaos::sites::PERSIST_WRITE.arm(Schedule::nth(1));
    assert!(matches!(replacement.save(&path), Err(PersistError::Io(_))));
    assert_eq!(std::fs::read(&path).expect("prior readable"), good_bytes);
    scenarios += 1;

    // Probabilistic write storms: keep retrying until a save lands; the
    // final path is only ever the prior or the new artifact, whole.
    for seed in 0..30u64 {
        good.save(&path).expect("reset baseline");
        chaos::sites::PERSIST_WRITE.arm(Schedule::probability(0.7, seed).payload(seed % 97));
        let mut landed = false;
        for _ in 0..64 {
            match replacement.save(&path) {
                Ok(()) => {
                    landed = true;
                    break;
                }
                Err(PersistError::Io(_)) => {
                    assert_eq!(
                        std::fs::read(&path).expect("prior readable"),
                        good_bytes,
                        "seed {seed}: storm corrupted the prior checkpoint"
                    );
                }
                Err(e) => panic!("seed {seed}: unexpected error {e}"),
            }
        }
        chaos::sites::PERSIST_WRITE.disarm();
        if !landed {
            replacement.save(&path).expect("clean save");
        }
        CaeEnsemble::load(&path).expect("post-storm checkpoint loads");
        scenarios += 1;
    }

    // Truncated reads at ~40 swept offsets: typed errors only, and the
    // last-good fallback recovers every time.
    let last_good = tmp_path("persist_last_good");
    good.save(&path).expect("reset baseline");
    good.save(&last_good).expect("fallback checkpoint");
    let read_step = (len / 40).max(1);
    for offset in (0..len).step_by(read_step) {
        chaos::sites::PERSIST_READ.arm(Schedule::nth(0).payload(offset as u64));
        let err = CaeEnsemble::load(&path).expect_err("truncated read must fail");
        assert!(
            matches!(
                err,
                PersistError::Corrupt(_) | PersistError::BadMagic | PersistError::ChecksumMismatch
            ),
            "offset {offset}: unexpected error {err:?}"
        );
        chaos::sites::PERSIST_READ.arm(Schedule::nth(0).payload(offset as u64));
        let recovered =
            CaeEnsemble::load_with_fallback(&path, &last_good).expect("fallback recovers");
        assert!(recovered.primary_error.is_some());
        scenarios += 1;
    }

    assert!(scenarios >= 130, "only {scenarios} persistence scenarios");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&last_good);
}

#[test]
fn adaptation_fault_matrix_retries_and_falls_back() {
    let _guard = chaos::exclusive();
    let live = fitted(41);
    let mut scenarios = 0u64;

    let primed = |live: &Arc<CaeEnsemble>| {
        let mut ctl = AdaptationController::new(
            live,
            &[0.01; 32],
            AdaptationConfig::new()
                .reservoir_capacity(32)
                .min_observations(16)
                .cooldown(1)
                .refit(RefitOptions::warm(1, 7))
                .refit_retries(2),
        );
        for t in 0..15 {
            assert!(!ctl.observe(live, &[clean(t, 0)], 10.0));
        }
        ctl
    };

    // Injected re-fit failures and panics: within the 2-retry budget the
    // publish still happens; beyond it the last-good ensemble remains.
    for seed in 0..3u64 {
        for panicking in [false, true] {
            for failures in [1u64, 2, 3] {
                let mut ctl = primed(&live);
                let schedule = if panicking {
                    Schedule::always().times(failures).panicking()
                } else {
                    Schedule::always().times(failures)
                };
                chaos::sites::ADAPT_REFIT.arm(schedule);
                assert!(ctl.observe(&live, &[clean(seed as usize, 0)], 10.0));
                let published = ctl.wait();
                chaos::disarm_all();
                if failures <= 2 {
                    assert!(
                        published.is_some(),
                        "seed={seed} panicking={panicking} failures={failures}: \
                         must succeed within the retry budget"
                    );
                    assert_eq!(ctl.stats().refit_retries, failures);
                    assert_eq!(ctl.stats().refits_failed, 0);
                } else {
                    assert!(published.is_none(), "exhausted budget must not publish");
                    assert_eq!(ctl.stats().refits_failed, 1);
                    assert!(
                        Arc::ptr_eq(ctl.last_good_ensemble(), &live),
                        "fallback must be the pre-fault ensemble"
                    );
                }
                scenarios += 1;
            }
        }
    }

    // Spawn failures: absorbed, counted, and retried on the next drift.
    for seed in 0..3u64 {
        let mut ctl = primed(&live);
        chaos::sites::ADAPT_SPAWN.arm(Schedule::nth(0));
        assert!(!ctl.observe(&live, &[clean(seed as usize, 1)], 10.0));
        assert_eq!(ctl.stats().spawn_failures, 1);
        assert!(ctl.observe(&live, &[clean(seed as usize, 2)], 10.0));
        assert!(ctl.wait().is_some(), "seed {seed}: relaunch must succeed");
        chaos::disarm_all();
        scenarios += 1;
    }

    assert_eq!(scenarios, 21);
}

#[test]
fn durability_fault_matrix_recovers_from_every_storm() {
    use cae_ensemble_repro::data::{
        JournalConfig, JournalError, JournalPosition, JournalRecord, ObservationJournal,
    };

    let _guard = chaos::exclusive();
    let dir = std::env::temp_dir().join(format!("cae_chaos_journal_{}", std::process::id()));
    let mut scenarios = 0u64;

    let record = |t: u64| JournalRecord::Observation {
        slot: 0,
        generation: 1,
        values: vec![(t as f32 * 0.3).sin()],
    };

    // Probabilistic append storms: each failed append poisons the
    // journal; a re-open truncates the torn tail and the committed
    // prefix survives bit for bit. 30 seeds × verified replay each.
    for seed in 0..30u64 {
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = JournalConfig::new().segment_bytes(256);
        let mut journal = ObservationJournal::open(&dir, cfg).expect("open");
        let mut committed = 0u64;
        chaos::sites::JOURNAL_APPEND.arm(Schedule::probability(0.4, seed).payload(seed % 53));
        for t in 0..60u64 {
            match journal.append(&record(t)) {
                Ok(_) => committed += 1,
                Err(JournalError::Io(_)) => {
                    // Poisoned: the only way forward is a re-open, which
                    // must land exactly on the committed prefix.
                    chaos::sites::JOURNAL_APPEND.disarm();
                    drop(journal);
                    journal = ObservationJournal::open(&dir, cfg).expect("re-open");
                    let replayed = journal
                        .replay_from(JournalPosition::origin())
                        .expect("replay after storm");
                    assert_eq!(
                        replayed.len() as u64,
                        committed,
                        "seed {seed} t={t}: committed prefix lost or over-recovered"
                    );
                    chaos::sites::JOURNAL_APPEND
                        .arm(Schedule::probability(0.4, seed).payload(seed % 53));
                }
                Err(e) => panic!("seed {seed}: unexpected error {e}"),
            }
        }
        chaos::disarm_all();
        scenarios += 1;
    }

    // Fsync storms under a cadence: appends keep landing (the data is
    // written; only the durability barrier fails) and a final clean sync
    // drains the backlog.
    for seed in 0..15u64 {
        let _ = std::fs::remove_dir_all(&dir);
        let mut journal =
            ObservationJournal::open(&dir, JournalConfig::new().fsync_every(3)).expect("open");
        chaos::sites::JOURNAL_FSYNC.arm(Schedule::probability(0.5, seed));
        let mut landed = 0u64;
        for t in 0..30u64 {
            match journal.append(&record(t)) {
                Ok(_) => landed += 1,
                Err(JournalError::Io(_)) => landed += 1, // written, barrier failed
                Err(e) => panic!("seed {seed}: unexpected error {e}"),
            }
        }
        chaos::disarm_all();
        journal.sync().expect("clean sync drains");
        assert_eq!(landed, 30);
        assert_eq!(
            journal
                .replay_from(JournalPosition::origin())
                .expect("replay")
                .len(),
            30
        );
        scenarios += 1;
    }

    // Snapshot-write storms: the prior snapshot always survives, whole.
    let ens = fitted(53);
    let mut fleet = FleetDetector::new(ens.clone());
    let id = fleet.add_stream();
    let mut out = Vec::new();
    for t in 0..20 {
        fleet.push(id, &[clean(t, 0)]).expect("push");
        fleet.tick(&mut out);
    }
    let snap_path =
        std::env::temp_dir().join(format!("cae_chaos_snapshot_{}.caef", std::process::id()));
    let good = fleet.snapshot();
    good.save(&snap_path).expect("baseline snapshot");
    let good_bytes = std::fs::read(&snap_path).expect("baseline bytes");
    for t in 20..35 {
        fleet.push(id, &[clean(t, 0)]).expect("push");
        fleet.tick(&mut out);
    }
    let next = fleet.snapshot();
    for seed in 0..15u64 {
        chaos::sites::SNAPSHOT_WRITE.arm(Schedule::probability(0.8, seed).payload(seed * 13));
        let mut landed = false;
        for _ in 0..64 {
            match next.save(&snap_path) {
                Ok(()) => {
                    landed = true;
                    break;
                }
                Err(PersistError::Io(_)) => {
                    assert_eq!(
                        std::fs::read(&snap_path).expect("prior readable"),
                        good_bytes,
                        "seed {seed}: storm corrupted the prior snapshot"
                    );
                }
                Err(e) => panic!("seed {seed}: unexpected error {e}"),
            }
        }
        chaos::disarm_all();
        if landed {
            // Reset the baseline for the next seed.
            good.save(&snap_path).expect("reset baseline");
        }
        scenarios += 1;
    }

    assert!(scenarios >= 60, "only {scenarios} durability scenarios");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&snap_path);
}
