//! Contract tests every detector (CAE-Ensemble and all baselines) must
//! satisfy: score length, finiteness, determinism under a fixed seed, and
//! better-than-random ranking on an easy synthetic anomaly task.

use cae_ensemble_repro::baselines::{
    AeEnsemble, AeEnsembleConfig, IsolationForest, IsolationForestConfig, LocalOutlierFactor,
    LofConfig, MovingAverage, Mscred, MscredConfig, OcsvmConfig, OmniAnomaly, OmniConfig,
    OneClassSvm, Rae, RaeConfig, RaeEnsemble, RaeEnsembleConfig, RnnVae, RnnVaeConfig,
};
use cae_ensemble_repro::prelude::*;

/// An easy 3-dimensional task: smooth correlated signal with strong
/// interval anomalies in the test split.
fn easy_task() -> (TimeSeries, TimeSeries, Vec<bool>) {
    let gen = |len: usize, offset: usize| {
        let mut s = TimeSeries::empty(3);
        for t in 0..len {
            let x = ((t + offset) as f32 * 0.15).sin();
            s.push(&[x, 0.7 * x + 0.1, -0.4 * x]);
        }
        s
    };
    let train = gen(700, 0);
    let mut test = gen(400, 700);
    let mut labels = vec![false; 400];
    for t in 150..170 {
        let d = test.dim();
        for di in 0..d {
            test.data_mut()[t * d + di] += 4.0;
        }
        labels[t] = true;
    }
    (train, test, labels)
}

fn detectors() -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(IsolationForest::new(IsolationForestConfig {
            num_trees: 30,
            subsample: 128,
            seed: 3,
        })),
        Box::new(LocalOutlierFactor::new(LofConfig {
            k: 10,
            max_reference: 500,
            seed: 3,
        })),
        Box::new(MovingAverage::with_defaults()),
        Box::new(OneClassSvm::new(OcsvmConfig {
            epochs: 10,
            seed: 3,
            ..OcsvmConfig::default()
        })),
        Box::new(Mscred::new(MscredConfig {
            epochs: 10,
            seed: 3,
            ..MscredConfig::default()
        })),
        Box::new(OmniAnomaly::new(OmniConfig {
            hidden: 12,
            latent: 4,
            window: 8,
            epochs: 4,
            train_stride: 4,
            seed: 3,
            ..OmniConfig::default()
        })),
        Box::new(RnnVae::new(RnnVaeConfig {
            hidden: 12,
            latent: 4,
            window: 8,
            epochs: 4,
            train_stride: 4,
            seed: 3,
            ..RnnVaeConfig::default()
        })),
        Box::new(AeEnsemble::new(AeEnsembleConfig {
            num_models: 3,
            epochs: 10,
            seed: 3,
            ..AeEnsembleConfig::default()
        })),
        Box::new(Rae::new(RaeConfig {
            hidden: 12,
            window: 8,
            epochs: 4,
            train_stride: 4,
            seed: 3,
            ..RaeConfig::default()
        })),
        Box::new(RaeEnsemble::new(RaeEnsembleConfig {
            rae: RaeConfig {
                hidden: 12,
                window: 8,
                epochs: 3,
                train_stride: 4,
                seed: 3,
                ..RaeConfig::default()
            },
            num_models: 2,
            ..RaeEnsembleConfig::default()
        })),
        Box::new(CaeEnsemble::new(
            CaeConfig::new(3).embed_dim(12).window(8).layers(1),
            EnsembleConfig::new()
                .num_models(2)
                .epochs_per_model(3)
                .train_stride(4)
                .seed(3),
        )),
    ]
}

#[test]
fn all_detectors_satisfy_the_scoring_contract() {
    let (train, test, _) = easy_task();
    for mut det in detectors() {
        det.fit(&train);
        let scores = det.score(&test);
        assert_eq!(scores.len(), test.len(), "{}: score length", det.name());
        assert!(
            scores.iter().all(|s| s.is_finite()),
            "{}: non-finite score",
            det.name()
        );
    }
}

#[test]
fn all_detectors_beat_random_on_easy_task() {
    let (train, test, labels) = easy_task();
    for mut det in detectors() {
        det.fit(&train);
        let scores = det.score(&test);
        let auc = cae_ensemble_repro::metrics::roc_auc(&scores, &labels);
        assert!(
            auc > 0.55,
            "{}: ROC AUC {auc:.3} not better than random on the easy task",
            det.name()
        );
    }
}

#[test]
fn all_detectors_are_deterministic() {
    let (train, test, _) = easy_task();
    // Two independent constructions with identical seeds must agree.
    let runs: Vec<Vec<Vec<f32>>> = (0..2)
        .map(|_| {
            detectors()
                .into_iter()
                .map(|mut det| {
                    det.fit(&train);
                    det.score(&test)
                })
                .collect()
        })
        .collect();
    for (i, (a, b)) in runs[0].iter().zip(runs[1].iter()).enumerate() {
        assert_eq!(a, b, "detector #{i} is not deterministic");
    }
}
