//! Restart-parity proof: snapshot + write-ahead journal replay
//! reconverges **bit-exactly** with a fleet that never died.
//!
//! The harness drives one deterministic serving workload — streams
//! opening and closing, observations (including faulty ones) pushed,
//! ticks scoring, an adaptation controller fed by every score, periodic
//! snapshots — twice:
//!
//! 1. a **reference** run that never crashes, recording every score and
//!    the final state;
//! 2. one hundred-plus **kill scenarios**, each dying after a different
//!    prefix of the workload (every third one with a torn in-flight
//!    journal frame), then recovering via
//!    `restore(snapshot) + replay(journal after snapshot position)` and
//!    finishing the workload.
//!
//! Every scenario must reproduce the reference's post-crash scores bit
//! for bit and land on a bit-identical final fleet snapshot and
//! adaptation state. That is the recovery-parity guarantee the README
//! advertises.

use cae_adapt::{AdaptationConfig, AdaptationController, AdaptationState};
use cae_chaos as chaos;
use cae_core::{CaeConfig, CaeEnsemble, EnsembleConfig};
use cae_data::{
    Detector, JournalConfig, JournalPosition, JournalRecord, ObservationJournal, TimeSeries,
};
use cae_serve::{FleetDetector, FleetSnapshot, StreamId};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Ops between periodic snapshots.
const SNAP_EVERY: usize = 37;
/// Tiny segments so the workload spans several and kills hit rotations.
const SEGMENT_BYTES: u64 = 512;
/// Kill scenarios (the acceptance floor is 100).
const KILL_SCENARIOS: usize = 102;

fn wave(t: usize, phase: f32) -> f32 {
    (t as f32 * 0.3 + phase).sin()
}

fn fitted_ensemble() -> Arc<CaeEnsemble> {
    let series = TimeSeries::univariate((0..200).map(|t| wave(t, 0.0)).collect());
    let mut ens = CaeEnsemble::new(
        CaeConfig::new(1).embed_dim(8).window(8).layers(1),
        EnsembleConfig::new()
            .num_models(2)
            .epochs_per_model(1)
            .batch_size(16)
            .train_stride(2)
            .seed(23),
    );
    ens.fit(&series);
    Arc::new(ens)
}

/// A drift band too wide to ever trip: the controller does pure
/// deterministic bookkeeping (no background re-fit threads), so its
/// exported state must be bit-identical across recovery.
fn adapt_cfg() -> AdaptationConfig {
    AdaptationConfig::new()
        .reservoir_capacity(64)
        .min_observations(16)
        .band_sigma(1.0e6)
}

fn baseline_scores() -> Vec<f32> {
    (0..40).map(|t| 0.1 + wave(t, 0.4).abs() * 0.01).collect()
}

/// One durable serving pipeline: journal → fleet → adaptation, with
/// periodic snapshots. Every event is journaled *before* it is applied.
struct Pipeline {
    journal: ObservationJournal,
    fleet: FleetDetector,
    ctl: AdaptationController,
    snap_path: PathBuf,
    ops_applied: usize,
    ticks: usize,
    /// `(tick index, slot, generation, score bits)` for parity checks.
    scores: Vec<(usize, u64, u64, u32)>,
}

impl Pipeline {
    fn fresh(ens: &Arc<CaeEnsemble>, dir: &Path) -> Pipeline {
        Pipeline {
            journal: ObservationJournal::open(
                dir.join("journal"),
                JournalConfig::new().segment_bytes(SEGMENT_BYTES),
            )
            .expect("journal open"),
            fleet: FleetDetector::new(ens.clone()),
            ctl: AdaptationController::new(ens, &baseline_scores(), adapt_cfg()),
            snap_path: dir.join("fleet.caef"),
            ops_applied: 0,
            ticks: 0,
            scores: Vec::new(),
        }
    }

    /// Journal-then-apply. Returns `Err` only on journal failure (the
    /// injected crash); push-level faults are part of the workload.
    fn apply(&mut self, op: &JournalRecord) -> Result<(), ()> {
        self.journal.append(op).map_err(|_| ())?;
        self.apply_in_memory(op);
        self.ops_applied += 1;
        if self.ops_applied % SNAP_EVERY == 0 {
            self.snapshot().expect("periodic snapshot");
        }
        Ok(())
    }

    fn apply_in_memory(&mut self, op: &JournalRecord) {
        match op {
            JournalRecord::StreamOpened { slot, generation } => {
                let minted = self.fleet.add_stream();
                assert_eq!(
                    minted.raw_parts(),
                    (*slot, *generation),
                    "deterministic id minting violated"
                );
            }
            JournalRecord::StreamClosed { slot, generation } => {
                self.fleet
                    .remove_stream(StreamId::from_raw_parts(*slot, *generation));
            }
            JournalRecord::Observation {
                slot,
                generation,
                values,
            } => {
                let _ = self
                    .fleet
                    .push(StreamId::from_raw_parts(*slot, *generation), values);
            }
            JournalRecord::Tick => {
                let mut out = Vec::new();
                self.fleet.tick(&mut out);
                let (ens, tick) = (self.fleet.ensemble().clone(), self.ticks);
                for (id, score) in out {
                    self.ctl.observe(&ens, &[score], score);
                    let (slot, generation) = id.raw_parts();
                    self.scores.push((tick, slot, generation, score.to_bits()));
                }
                self.ticks += 1;
            }
        }
    }

    fn snapshot(&mut self) -> Result<(), cae_core::PersistError> {
        self.fleet
            .snapshot()
            .with_journal_position(self.journal.position())
            .with_adaptation_state(self.ctl.export_state().encode())
            .save(&self.snap_path)
    }

    /// Crash recovery: load the latest snapshot (if one landed), rebuild
    /// fleet and controller, replay the journal suffix — re-feeding
    /// replayed scores to the controller, exactly like live operation.
    ///
    /// Returns the pipeline plus the index into `ops` the workload must
    /// resume from. Usually that is the kill point `k`, but a torn
    /// append whose tear covered the whole frame leaves op `k` durable
    /// *without* the dead process having applied it — replay applies it,
    /// so the resume point is `k + 1`. The journal is the truth; the
    /// harness derives the resume index from what actually replayed.
    fn recover(
        ens: &Arc<CaeEnsemble>,
        dir: &Path,
        ops: &[JournalRecord],
        kill: usize,
    ) -> (Pipeline, usize) {
        let journal = ObservationJournal::open(
            dir.join("journal"),
            JournalConfig::new().segment_bytes(SEGMENT_BYTES),
        )
        .expect("journal re-open");
        let snap_path = dir.join("fleet.caef");
        let (mut fleet, mut ctl, from, base_ops) = if snap_path.exists() {
            let snap = FleetSnapshot::load(&snap_path).expect("snapshot load");
            let fleet = FleetDetector::restore(ens.clone(), &snap).expect("restore");
            let state = AdaptationState::decode(
                snap.adaptation_state()
                    .expect("snapshot carries adapt state"),
            )
            .expect("adapt state decode");
            let ctl =
                AdaptationController::restore(ens, adapt_cfg(), &state).expect("adapt restore");
            let from = snap.journal_position().expect("snapshot carries position");
            // Snapshots land only on SNAP_EVERY boundaries; the latest
            // one at or before the kill is the replay base.
            (fleet, ctl, from, (kill / SNAP_EVERY) * SNAP_EVERY)
        } else {
            (
                FleetDetector::new(ens.clone()),
                AdaptationController::new(ens, &baseline_scores(), adapt_cfg()),
                JournalPosition::origin(),
                0,
            )
        };
        let records = journal.replay_from(from).expect("journal replay");
        let resume = base_ops + records.len();
        assert!(
            resume == kill || resume == kill + 1,
            "journal must hold exactly the ops applied before the kill \
             (plus at most one fully-torn-in frame): kill {kill}, durable {resume}"
        );
        for (replayed, expected) in records.iter().zip(&ops[base_ops..resume]) {
            assert!(
                records_bit_equal(replayed, expected),
                "durable record diverged from the workload: {replayed:?} vs {expected:?}"
            );
        }
        let summary = {
            let ctl = &mut ctl;
            let live = ens.clone();
            fleet
                .replay_journal_with(&records, |_, score| {
                    ctl.observe(&live, &[score], score);
                })
                .expect("journal replay into fleet")
        };
        assert_eq!(summary.records as usize, records.len());
        let ticks = count_ticks(&ops[..resume]);
        let pipeline = Pipeline {
            journal,
            fleet,
            ctl,
            snap_path,
            ops_applied: resume,
            ticks,
            scores: Vec::new(),
        };
        (pipeline, resume)
    }
}

fn count_ticks(ops: &[JournalRecord]) -> usize {
    ops.iter()
        .filter(|op| matches!(op, JournalRecord::Tick))
        .count()
}

/// Record equality with NaN-tolerant (bitwise) float comparison — the
/// workload deliberately journals NaN observations, and `NaN != NaN`
/// under `PartialEq`.
fn records_bit_equal(a: &JournalRecord, b: &JournalRecord) -> bool {
    match (a, b) {
        (
            JournalRecord::Observation {
                slot: sa,
                generation: ga,
                values: va,
            },
            JournalRecord::Observation {
                slot: sb,
                generation: gb,
                values: vb,
            },
        ) => {
            sa == sb
                && ga == gb
                && va.len() == vb.len()
                && va.iter().zip(vb).all(|(x, y)| x.to_bits() == y.to_bits())
        }
        _ => a == b,
    }
}

/// Builds the workload against a throwaway fleet, resolving stream ids,
/// so every scenario replays the identical op list.
fn build_workload(ens: &Arc<CaeEnsemble>) -> Vec<JournalRecord> {
    let mut fleet = FleetDetector::new(ens.clone());
    let mut open: Vec<StreamId> = Vec::new();
    let mut ops = Vec::new();
    let mut out = Vec::new();
    for t in 0..48usize {
        if t % 15 == 0 && open.len() < 4 {
            let id = fleet.add_stream();
            let (slot, generation) = id.raw_parts();
            ops.push(JournalRecord::StreamOpened { slot, generation });
            open.push(id);
        }
        if t % 21 == 10 && open.len() > 1 {
            let id = open.remove(t % open.len());
            let (slot, generation) = id.raw_parts();
            ops.push(JournalRecord::StreamClosed { slot, generation });
            fleet.remove_stream(id);
        }
        for &id in &open {
            let (slot, generation) = id.raw_parts();
            let faulty = (t + slot as usize * 5) % 29 == 0;
            let v = if faulty {
                f32::NAN
            } else {
                wave(t, slot as f32 * 0.9)
            };
            ops.push(JournalRecord::Observation {
                slot,
                generation,
                values: vec![v],
            });
            let _ = fleet.push(id, &[v]);
        }
        ops.push(JournalRecord::Tick);
        fleet.tick(&mut out);
    }
    ops
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cae_restart_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn every_kill_point_reconverges_bit_exactly_with_the_reference_run() {
    let _guard = chaos::exclusive();
    let ens = fitted_ensemble();
    let ops = build_workload(&ens);
    assert!(
        ops.len() > KILL_SCENARIOS,
        "workload ({} ops) must outnumber the kill scenarios",
        ops.len()
    );

    // Reference: the never-killed run.
    let ref_dir = tmp_dir("reference");
    let mut reference = Pipeline::fresh(&ens, &ref_dir);
    for op in &ops {
        reference.apply(op).expect("reference never crashes");
    }
    let ref_scores = reference.scores.clone();
    let ref_final_fleet = reference.fleet.snapshot().encode();
    let ref_final_adapt = reference.ctl.export_state();
    let ref_report = reference.fleet.health_report();
    let _ = std::fs::remove_dir_all(&ref_dir);

    for k in 1..=KILL_SCENARIOS {
        let dir = tmp_dir("scenario");
        let mut pipeline = Pipeline::fresh(&ens, &dir);
        for op in &ops[..k] {
            pipeline.apply(op).expect("pre-kill ops apply cleanly");
        }

        // The kill. Every third scenario dies *mid-append*: the next
        // frame tears after k-dependent bytes, leaving a torn tail the
        // re-open must truncate. The op never applied, so recovery must
        // reconverge on the state after exactly `k` ops either way.
        if k % 3 == 0 {
            chaos::sites::JOURNAL_APPEND.arm(chaos::Schedule::nth(0).payload((k % 48) as u64));
            pipeline
                .apply(&ops[k])
                .expect_err("armed append must crash");
            chaos::disarm_all();
        }
        drop(pipeline);

        // Recovery + the rest of the workload.
        let (mut recovered, resume) = Pipeline::recover(&ens, &dir, &ops, k);
        let ticks_at_resume = recovered.ticks;
        if k % 10 == 0 {
            // Spot-check mid-run parity: the recovered counters must
            // match a fleet that simply applied the prefix in memory —
            // replay must not double- or under-count faults.
            let probe_dir = tmp_dir("probe");
            let mut probe = Pipeline::fresh(&ens, &probe_dir);
            for op in &ops[..resume] {
                probe.apply_in_memory(op);
            }
            assert_eq!(
                recovered.fleet.health_report(),
                probe.fleet.health_report(),
                "kill after {k} ops: recovered counters diverge"
            );
            drop(probe);
            let _ = std::fs::remove_dir_all(&probe_dir);
        }
        for op in &ops[resume..] {
            recovered
                .apply(op)
                .expect("post-recovery ops apply cleanly");
        }

        // Parity 1: every score after the recovery point, bit for bit.
        let expected: Vec<_> = ref_scores
            .iter()
            .filter(|(tick, ..)| *tick >= ticks_at_resume)
            .copied()
            .collect();
        assert_eq!(
            recovered.scores, expected,
            "kill after {k} ops: post-recovery scores diverge"
        );

        // Parity 2: the final fleet state, bit for bit.
        assert_eq!(
            recovered.fleet.snapshot().encode(),
            ref_final_fleet,
            "kill after {k} ops: final fleet state diverges"
        );
        assert_eq!(recovered.fleet.health_report(), ref_report);

        // Parity 3: the adaptation tier, bit for bit.
        assert_eq!(
            recovered.ctl.export_state(),
            ref_final_adapt,
            "kill after {k} ops: final adaptation state diverges"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
