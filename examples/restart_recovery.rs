//! Restart recovery: a serving pipeline that journals every event,
//! snapshots periodically, dies mid-append — and comes back bit-exact.
//!
//! ```text
//! cargo run --release --example restart_recovery
//! ```
//!
//! The pipeline exercises the durability layer end to end:
//!
//! 1. **Checkpoint the model**: fit an ensemble offline and save it —
//!    the model artifact is durable before serving starts.
//! 2. **Journal-then-apply**: every serving event (stream opened,
//!    observation pushed, tick) is appended to a write-ahead
//!    [`ObservationJournal`] *before* it touches the fleet; tick scores
//!    feed an [`AdaptationController`].
//! 3. **Snapshot periodically**: a [`FleetSnapshot`] captures the whole
//!    fleet — warm-up rings, health machines, counters — plus the
//!    journal position it was taken at and the controller's exported
//!    [`AdaptationState`].
//! 4. **Crash mid-append**: the `journal.append` failpoint tears a
//!    frame partway through its write, exactly as if power died; the
//!    in-memory fleet and controller are dropped on the floor.
//! 5. **Recover**: load the checkpoint, load the snapshot, restore the
//!    fleet and controller, truncate the torn tail, replay the journal
//!    suffix through the normal serving path (re-feeding replayed
//!    scores to the controller), and resume.
//! 6. **Prove parity**: the recovered pipeline finishes the workload and
//!    its scores, final fleet snapshot and adaptation state match an
//!    uninterrupted run **bit for bit**.

use cae_ensemble_repro::adapt::AdaptationState;
use cae_ensemble_repro::chaos::{self, Schedule};
use cae_ensemble_repro::data::{JournalConfig, JournalRecord, ObservationJournal};
use cae_ensemble_repro::prelude::*;
use cae_ensemble_repro::serve::FleetSnapshot;
use std::sync::Arc;

const STEPS: usize = 40;
const SNAP_AT: usize = 24;
const CRASH_AT: usize = 33;
const SEED: u64 = 47;

fn wave(t: usize, phase: f32) -> f32 {
    (t as f32 * 0.27 + phase).sin() + 0.2 * (t as f32 * 0.06 + phase).cos()
}

/// A drift band too wide to trip: the controller does deterministic
/// bookkeeping only, so its exported state is bit-comparable.
fn adapt_cfg() -> AdaptationConfig {
    AdaptationConfig::new()
        .reservoir_capacity(64)
        .min_observations(16)
        .band_sigma(1.0e6)
}

/// One serving step under the journal-then-apply discipline. Returns
/// the scores the tick emitted, or `Err` if the journal append crashed.
fn step(
    t: usize,
    journal: &mut ObservationJournal,
    fleet: &mut FleetDetector,
    ctl: &mut AdaptationController,
    ids: &[StreamId],
) -> Result<Vec<(StreamId, f32)>, ()> {
    for (k, &id) in ids.iter().enumerate() {
        let (slot, generation) = id.raw_parts();
        let values = vec![wave(t, k as f32 * 0.8)];
        journal
            .append(&JournalRecord::Observation {
                slot,
                generation,
                values: values.clone(),
            })
            .map_err(|_| ())?;
        fleet.push(id, &values).expect("live stream");
    }
    journal.append(&JournalRecord::Tick).map_err(|_| ())?;
    let mut out = Vec::new();
    fleet.tick(&mut out);
    let ens = fleet.ensemble().clone();
    for &(_, score) in &out {
        ctl.observe(&ens, &[score], score);
    }
    Ok(out)
}

fn main() {
    // --- 1. Offline: train and checkpoint the model --------------------
    let train = TimeSeries::univariate((0..400).map(|t| wave(t, 0.0)).collect());
    let mut detector = CaeEnsemble::new(
        CaeConfig::new(1).embed_dim(8).window(8).layers(1),
        EnsembleConfig::new()
            .num_models(2)
            .epochs_per_model(2)
            .seed(SEED),
    );
    println!("offline training…");
    detector.fit(&train);

    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("cae_restart_demo_{pid}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("demo directory");
    let model_path = dir.join("model.caee");
    detector.save(&model_path).expect("model checkpoint");
    let ensemble = Arc::new(detector);

    // --- 2. Serve with a write-ahead journal ---------------------------
    let journal_dir = dir.join("journal");
    let snap_path = dir.join("fleet.caef");
    let mut journal = ObservationJournal::open(
        &journal_dir,
        JournalConfig::new().segment_bytes(1024).fsync_every(4),
    )
    .expect("journal open");
    let mut fleet = FleetDetector::new(ensemble.clone());
    let baseline: Vec<f32> = (0..32).map(|t| 0.1 + wave(t, 0.3).abs() * 0.01).collect();
    let mut ctl = AdaptationController::new(&ensemble, &baseline, adapt_cfg());

    let mut ids = Vec::new();
    for _ in 0..3 {
        // Journal the open first; replay must mint the same id.
        let probe = fleet.add_stream();
        let (slot, generation) = probe.raw_parts();
        journal
            .append(&JournalRecord::StreamOpened { slot, generation })
            .expect("journal open record");
        ids.push(probe);
    }

    let _chaos = chaos::exclusive();
    for t in 0..CRASH_AT {
        step(t, &mut journal, &mut fleet, &mut ctl, &ids).expect("pre-crash step");
        if t + 1 == SNAP_AT {
            // --- 3. Periodic snapshot: fleet + journal position +
            //        adaptation state, written atomically. -------------
            fleet
                .snapshot()
                .with_journal_position(journal.position())
                .with_adaptation_state(ctl.export_state().encode())
                .save(&snap_path)
                .expect("periodic snapshot");
            println!(
                "t={t}: snapshot saved ({} streams, journal at {:?})",
                fleet.snapshot().num_streams(),
                journal.position()
            );
        }
    }

    // --- 4. Power dies mid-append --------------------------------------
    // The next journal frame tears after 5 bytes; the append reports a
    // typed error and the op is never applied. Then the process "dies":
    // fleet, controller and journal handle are all dropped.
    chaos::sites::JOURNAL_APPEND.arm(Schedule::nth(0).payload(5));
    let crash = step(CRASH_AT, &mut journal, &mut fleet, &mut ctl, &ids);
    assert!(crash.is_err(), "armed append must crash");
    chaos::disarm_all();
    println!("t={CRASH_AT}: power lost mid-append (torn frame on disk)");
    drop((journal, fleet, ctl));

    // --- 5. Restart: checkpoint → snapshot → replay --------------------
    let ensemble = Arc::new(CaeEnsemble::load(&model_path).expect("model reload"));
    let mut journal = ObservationJournal::open(
        &journal_dir,
        JournalConfig::new().segment_bytes(1024).fsync_every(4),
    )
    .expect("journal re-open truncates the torn tail");
    println!(
        "journal re-opened: {} torn byte(s) truncated",
        journal.truncated_bytes()
    );

    let snap = FleetSnapshot::load(&snap_path).expect("snapshot load");
    let mut fleet = FleetDetector::restore(ensemble.clone(), &snap).expect("fleet restore");
    let state = AdaptationState::decode(snap.adaptation_state().expect("state in snapshot"))
        .expect("adaptation state decode");
    let mut ctl =
        AdaptationController::restore(&ensemble, adapt_cfg(), &state).expect("controller restore");

    let from = snap.journal_position().expect("position in snapshot");
    let records = journal.replay_from(from).expect("journal replay");
    let summary = {
        let ctl = &mut ctl;
        let live = ensemble.clone();
        fleet
            .replay_journal_with(&records, |_, score| {
                ctl.observe(&live, &[score], score);
            })
            .expect("replay through the serving path")
    };
    println!(
        "replayed {} records ({} observations, {} ticks) after the snapshot",
        summary.records, summary.observations, summary.ticks
    );

    // --- 6. Finish the workload; prove bit-exact parity ----------------
    // The reference pipeline runs the same workload start to finish
    // without ever crashing (its journal lives in a scratch directory).
    let mut ref_journal = ObservationJournal::open(
        dir.join("reference-journal"),
        JournalConfig::new().segment_bytes(1024),
    )
    .expect("reference journal");
    let mut ref_fleet = FleetDetector::new(ensemble.clone());
    let mut ref_ctl = AdaptationController::new(&ensemble, &baseline, adapt_cfg());
    for &id in &ids {
        let (slot, generation) = id.raw_parts();
        ref_journal
            .append(&JournalRecord::StreamOpened { slot, generation })
            .expect("reference journal");
        assert_eq!(ref_fleet.add_stream(), id);
    }
    for t in 0..STEPS {
        let ref_scores = step(t, &mut ref_journal, &mut ref_fleet, &mut ref_ctl, &ids)
            .expect("reference never crashes");
        if t >= CRASH_AT {
            let scores =
                step(t, &mut journal, &mut fleet, &mut ctl, &ids).expect("post-recovery step");
            for ((id_a, a), (id_b, b)) in scores.iter().zip(&ref_scores) {
                assert_eq!(id_a, id_b);
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "t={t}: recovered score diverged from the reference"
                );
            }
        }
    }
    assert_eq!(
        fleet.snapshot().encode(),
        ref_fleet.snapshot().encode(),
        "final fleet state must be bit-identical"
    );
    assert_eq!(fleet.health_report(), ref_fleet.health_report());
    assert_eq!(
        ctl.export_state(),
        ref_ctl.export_state(),
        "final adaptation state must be bit-identical"
    );
    println!(
        "recovered pipeline finished the workload: {} post-crash ticks, \
         final fleet snapshot and adaptation state bit-identical to the \
         uninterrupted run",
        STEPS - CRASH_AT
    );

    let _ = std::fs::remove_dir_all(&dir);
}
