//! Production serving: train once, checkpoint, then serve a fleet of
//! 1024 concurrent streams from the loaded ensemble.
//!
//! ```text
//! cargo run --release --example fleet_serving
//! ```
//!
//! The pipeline is the paper's online setting (Section 4.2.7) at fleet
//! scale:
//!
//! 1. **Offline**: fit a [`CaeEnsemble`] on a clean signal and
//!    [`save`](CaeEnsemble::save) it to a versioned binary checkpoint.
//! 2. **Online**: [`load`](CaeEnsemble::load) the checkpoint in a "fresh
//!    process" (no retraining) and open 1024 stream sessions on a
//!    [`FleetDetector`]. Every tick pools all ready streams into
//!    `(64, w, D)` batches, so member inference runs through the packed
//!    GEMM kernels instead of 1024 batch-size-1 forwards.
//! 3. **Verify**: fleet scores are *identical* — bit-for-bit — to the
//!    offline batch scorer on every stream, and the loaded ensemble
//!    matches the trained one exactly.

use cae_ensemble_repro::prelude::*;
use std::collections::HashMap;
use std::time::Instant;

/// Fixed RNG seed: training is deterministic, so repeated runs produce
/// bit-identical checkpoints and scores.
const SEED: u64 = 11;

/// 16 distinct signal phases shared by 64 streams each: 1024 sessions.
const PHASES: usize = 16;
const STREAMS_PER_PHASE: usize = 64;

fn wave(t: usize, phase: f32) -> f32 {
    (t as f32 * 0.25 + phase).sin() + 0.3 * (t as f32 * 0.06 + phase).sin()
}

fn main() {
    // --- Offline: train once and checkpoint ---------------------------
    let train = TimeSeries::univariate((0..1200).map(|t| wave(t, 0.0)).collect());
    let mut detector = CaeEnsemble::new(
        CaeConfig::new(1).embed_dim(16).window(16).layers(2),
        EnsembleConfig::new()
            .num_models(3)
            .epochs_per_model(4)
            .seed(SEED),
    );
    println!("offline training…");
    detector.fit(&train);

    let path = std::env::temp_dir().join("cae_fleet_serving_demo.caee");
    detector.save(&path).expect("checkpoint write");
    let bytes = std::fs::metadata(&path).expect("checkpoint exists").len();
    println!(
        "saved checkpoint: {} ({bytes} bytes, {} members)",
        path.display(),
        detector.num_members()
    );

    // --- Online: load and serve (no retraining) -----------------------
    let ensemble = CaeEnsemble::load(&path).expect("checkpoint read");
    let _ = std::fs::remove_file(&path);

    // The loaded ensemble is bit-identical to the trained one.
    let holdout = TimeSeries::univariate((0..320).map(|t| wave(t, 0.7)).collect());
    assert_eq!(
        ensemble.score(&holdout),
        detector.score(&holdout),
        "loaded ensemble must score bit-identically to the trained one"
    );
    println!("load verified: held-out scores are bit-identical to the trained ensemble");

    let w = ensemble.model_config().window;
    // 64 scored ticks per stream; n_win = 64 aligns fleet chunks with the
    // batch scorer's inference chunks, making the comparison bit-exact.
    let len = (w - 1) + 64;
    let phase_of = |k: usize| (k % PHASES) as f32 * 0.37;
    let phase_series: Vec<TimeSeries> = (0..PHASES)
        .map(|p| TimeSeries::univariate((0..len).map(|t| wave(t, phase_of(p))).collect()))
        .collect();

    let ensemble = std::sync::Arc::new(ensemble);
    let mut fleet = FleetDetector::new(ensemble.clone());
    let ids: Vec<StreamId> = (0..PHASES * STREAMS_PER_PHASE)
        .map(|_| fleet.add_stream())
        .collect();
    println!("serving {} concurrent streams…", fleet.num_streams());

    let index_of: HashMap<StreamId, usize> =
        ids.iter().enumerate().map(|(k, &id)| (id, k)).collect();
    let mut out = Vec::new();
    let mut per_stream: Vec<Vec<f32>> = vec![Vec::new(); ids.len()];
    let t0 = Instant::now();
    let mut scored = 0usize;
    for t in 0..len {
        for (k, &id) in ids.iter().enumerate() {
            fleet
                .push(id, phase_series[k % PHASES].observation(t))
                .expect("live stream");
        }
        fleet.tick(&mut out);
        scored += out.len();
        for &(id, score) in &out {
            per_stream[index_of[&id]].push(score);
        }
    }
    let elapsed = t0.elapsed();
    println!(
        "scored {scored} stream-observations in {:.1} ms ({:.2} µs/observation)",
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e6 / scored as f64
    );

    // --- Verify: fleet output == offline batch scorer ------------------
    for (p, series) in phase_series.iter().enumerate() {
        let batch_scores = ensemble.score(series);
        for (k, scores) in per_stream.iter().enumerate() {
            if k % PHASES != p {
                continue;
            }
            assert_eq!(scores.len(), 64, "stream {k} tick count");
            assert_eq!(
                scores,
                &batch_scores[w - 1..],
                "stream {k} diverged from the batch scorer"
            );
        }
    }
    println!(
        "verified: all {} streams produced scores identical to the batch scorer ✓",
        ids.len()
    );
}
