//! Spacecraft-telemetry monitoring: the MSL/SMAP-like scenario. Uses the
//! paper's unsupervised median strategy (Section 3.3) to pick the window
//! size and diversity weight before training — no labels touched until the
//! final evaluation.
//!
//! ```text
//! cargo run --release --example spacecraft_telemetry
//! ```

use cae_ensemble_repro::core::hyper::{select_hyperparameters, HyperRanges};
use cae_ensemble_repro::prelude::*;

/// One fixed RNG seed pins every stochastic component — dataset
/// generation, the hyperparameter search, and both training runs — so
/// repeated runs select the same configuration and print identical
/// numbers.
const SEED: u64 = 7;

fn main() {
    cae_ensemble_repro::tensor::par::use_all_cores();

    let ds = DatasetKind::Msl.generate(Scale::Quick, SEED);
    println!(
        "dataset: {} — train {}×{}D, test {}×{}D, {:.2}% outliers",
        ds.name,
        ds.train.len(),
        ds.train.dim(),
        ds.test.len(),
        ds.test.dim(),
        100.0 * ds.outlier_ratio()
    );

    // Fully unsupervised hyperparameter selection (Algorithm 2) on the
    // unlabeled training series, with a reduced search budget.
    let base_model = CaeConfig::new(ds.train.dim()).embed_dim(24).layers(2);
    let search_cfg = EnsembleConfig::new()
        .num_models(2)
        .epochs_per_model(2)
        .train_stride(8)
        .seed(SEED);
    let ranges = HyperRanges::quick();
    println!("running unsupervised hyperparameter selection (median strategy)…");
    let sel = select_hyperparameters(&ds.train, &base_model, &search_cfg, &ranges, SEED);
    println!(
        "selected: w = {}, beta = {:.1}, lambda = {}",
        sel.window, sel.beta, sel.lambda
    );

    // Train the full detector with the selected hyperparameters.
    let mut detector = CaeEnsemble::new(
        base_model.window(sel.window),
        EnsembleConfig::new()
            .num_models(4)
            .epochs_per_model(4)
            .beta(sel.beta)
            .lambda(sel.lambda)
            .train_stride(6)
            .seed(SEED),
    );
    detector.fit(&ds.train);
    let scores = detector.score(&ds.test);
    let report = EvalReport::compute(&scores, &ds.test_labels);
    println!("final evaluation (labels used only here): {report}");
}
