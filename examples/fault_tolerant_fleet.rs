//! Fault-tolerant serving: a fleet that survives NaN storms, flat-lined
//! sensors, malformed rows and a torn checkpoint — and proves it
//! recovered bit-exactly.
//!
//! ```text
//! cargo run --release --example fault_tolerant_fleet
//! ```
//!
//! The pipeline exercises the degradation machinery end to end:
//!
//! 1. **Checkpoint with a safety net**: fit, save a primary checkpoint
//!    and a last-good copy, then arm the `persist.read` failpoint so the
//!    primary tears mid-read —
//!    [`load_with_fallback`](CaeEnsemble::load_with_fallback) recovers
//!    from the copy and retains the primary's typed error.
//! 2. **Serve through faults**: 8 streams, three of them wrapped in
//!    seeded [`StreamFaultInjector`]s (a NaN storm, a frozen sensor, a
//!    dimension-garbling upstream). Faulty observations never reach the
//!    scoring ring; persistent offenders are quarantined and consume no
//!    tick budget.
//! 3. **Recover on schedule**: once the faults clear, each quarantined
//!    stream probes back to health in exactly
//!    [`recovery_pushes`](HealthConfig::recovery_pushes) clean pushes and
//!    then scores **bit-identically** to a stream that was never faulty.
//! 4. **Publish through a dead disk**: a background re-fit whose
//!    checkpoint writes all fail (armed `persist.write` failpoint)
//!    retries with capped backoff, then publishes in-memory anyway —
//!    the fleet hot-swaps to the adapted ensemble and the full error
//!    chain stays inspectable in
//!    [`last_checkpoint_error`](AdaptationController::last_checkpoint_error).
//! 5. **Report**: one merged [`HealthReport`] summarizes quarantines,
//!    recoveries, rejected observations, retries and fallbacks.

use cae_ensemble_repro::chaos::{
    self, Delivery, FaultWindow, InputFault, Schedule, StreamFaultInjector,
};
use cae_ensemble_repro::prelude::*;

const STREAMS: usize = 8;
const FAULT_FROM: usize = 40;
const FAULT_TO: usize = 64;
const SEED: u64 = 43;

fn wave(t: usize, phase: f32) -> f32 {
    (t as f32 * 0.23 + phase).sin() + 0.3 * (t as f32 * 0.05 + phase).cos()
}

fn main() {
    // --- Offline: train, checkpoint, and keep a last-good copy --------
    let train = TimeSeries::univariate((0..600).map(|t| wave(t, 0.0)).collect());
    let mut detector = CaeEnsemble::new(
        CaeConfig::new(1).embed_dim(8).window(16).layers(1),
        EnsembleConfig::new()
            .num_models(2)
            .epochs_per_model(3)
            .seed(SEED),
    );
    println!("offline training…");
    detector.fit(&train);

    let dir = std::env::temp_dir();
    let primary = dir.join("cae_fault_demo_primary.caee");
    let last_good = dir.join("cae_fault_demo_last_good.caee");
    detector.save(&primary).expect("primary checkpoint");
    detector.save(&last_good).expect("last-good checkpoint");

    // --- A torn primary checkpoint is survivable ----------------------
    // Arm the `persist.read` failpoint: the next read of the primary is
    // truncated to 64 bytes, exactly as if the disk died mid-write.
    let _chaos = chaos::exclusive();
    chaos::sites::PERSIST_READ.arm(Schedule::nth(0).payload(64));
    let recovered =
        CaeEnsemble::load_with_fallback(&primary, &last_good).expect("fallback recovers");
    let ensemble = recovered.value;
    match recovered.primary_error {
        Some(err) => println!("primary checkpoint torn ({err}); recovered from last-good copy"),
        None => println!("primary checkpoint loaded clean"),
    }

    // --- Online: serve a fleet through an input-fault storm -----------
    let health = HealthConfig::default().flatline_after(8);
    let w = ensemble.model_config().window;
    let recovery = health.recovery_pushes(w);
    let mut fleet = FleetDetector::with_health(ensemble, health);
    let ids: Vec<StreamId> = (0..STREAMS).map(|_| fleet.add_stream()).collect();

    // Streams 0–2 get a fault window each; 3–7 stay clean throughout.
    let mut injectors: Vec<Option<StreamFaultInjector>> = (0..STREAMS)
        .map(|k| {
            let kind = match k {
                0 => InputFault::NanStorm,
                1 => InputFault::FlatLine,
                2 => InputFault::DimGarble,
                _ => return None,
            };
            Some(StreamFaultInjector::new(
                FaultWindow::new(kind, FAULT_FROM, FAULT_TO),
                SEED ^ k as u64,
            ))
        })
        .collect();

    // A malformed row is a *typed* error, not a panic.
    let err = fleet.push(ids[0], &[1.0, 2.0]).expect_err("wrong dim");
    assert_eq!(
        err,
        PushError::DimMismatch {
            got: 2,
            expected: 1
        }
    );
    println!("typed rejection: {err}");

    let ticks = FAULT_TO + recovery + 20;
    let mut out = Vec::new();
    let mut last_scores = [f32::NAN; STREAMS];
    for t in 0..ticks {
        for (k, id) in ids.iter().enumerate() {
            let obs = [wave(t, k as f32 * 0.4)];
            let delivery = match injectors[k].as_mut() {
                Some(inj) => inj.next(t, &obs),
                None => Delivery::Deliver(obs.to_vec()),
            };
            match delivery {
                Delivery::Deliver(row) => match fleet.push(*id, &row) {
                    Ok(_) => {}
                    Err(PushError::DimMismatch { got, .. }) => {
                        // The garbling upstream: counted as a stream
                        // fault, never a crash.
                        debug_assert!(got != 1);
                    }
                    Err(e) => panic!("unexpected push error: {e}"),
                },
                Delivery::DeliverTwice(row) => {
                    fleet.push(*id, &row).expect("live stream");
                    fleet.push(*id, &row).expect("live stream");
                }
                Delivery::Dropped => {}
            }
        }
        fleet.tick(&mut out);
        for &(id, score) in &out {
            assert!(score.is_finite(), "a non-finite score escaped");
            let k = ids.iter().position(|i| *i == id).expect("known session");
            last_scores[k] = score;
        }
        if t == FAULT_TO - 1 {
            for (k, id) in ids.iter().enumerate().take(3) {
                println!("t={t}: stream {k} is {:?}", fleet.stream_health(*id));
            }
        }
    }

    // --- The recovered streams score exactly like the clean ones ------
    // Streams 0 and 3 follow the same signal family with different
    // phases; after recovery, stream 0's scoring path is byte-for-byte
    // the healthy path again. Re-run stream 0's phase through a fresh
    // fleet that never saw a fault and compare bit-exactly.
    let mut reference = FleetDetector::with_health(fleet.ensemble().clone(), health);
    let ref_id = reference.add_stream();
    let mut ref_score = f32::NAN;
    for t in 0..ticks {
        reference
            .push(ref_id, &[wave(t, 0.0)])
            .expect("live stream");
        reference.tick(&mut out);
        if let Some(&(_, s)) = out.first() {
            ref_score = s;
        }
    }
    assert_eq!(
        last_scores[0].to_bits(),
        ref_score.to_bits(),
        "recovered stream must score bit-exactly like a never-faulty one"
    );
    println!(
        "stream 0 recovered: final score {:.6} matches the clean path bit-exactly",
        last_scores[0]
    );

    // --- A checkpoint failure mid-re-fit still publishes --------------
    // Every checkpoint write now fails; the re-fit retries with capped
    // backoff, then falls back to an in-memory publish — serving never
    // strands on the stale generation.
    let ckpt = dir.join("cae_fault_demo_adapted.caee");
    let mut adapt = AdaptationController::new(
        fleet.ensemble(),
        &[0.01; 64], // tiny drift band: the probe scores below trip it
        AdaptationConfig::new()
            .reservoir_capacity(64)
            .min_observations(32)
            .refit(RefitOptions::warm(1, SEED))
            .checkpoint_path(ckpt.clone())
            .checkpoint_retries(2)
            .backoff_ms(1, 4),
    );
    chaos::sites::PERSIST_WRITE.arm(Schedule::always());
    let mut launched = false;
    for t in 0..40 {
        launched |= adapt.observe(fleet.ensemble(), &[wave(t, 0.0)], 10.0);
    }
    assert!(launched, "drift must trip a background re-fit");
    let adapted = adapt.wait().expect("fallback publish despite dead disk");
    chaos::sites::PERSIST_WRITE.disarm();
    fleet.swap_ensemble(adapted);
    let failure = adapt
        .last_checkpoint_error()
        .expect("error chain retained for operators");
    println!(
        "checkpoint fallback: {failure}; adapted ensemble live (swap #{})",
        fleet.swap_count()
    );
    assert!(!ckpt.exists(), "no torn artifact at the final path");
    assert_eq!(adapt.stats().checkpoint_fallbacks, 1);

    // --- One report across both tiers ---------------------------------
    let mut report = fleet.health_report();
    report.merge(&adapt.health_report());
    println!(
        "health: {} quarantines, {} recoveries, {} faulty observations rejected, \
         {} checkpoint retries ({} ms scheduled backoff), {} fallback publishes",
        report.quarantine_events,
        report.recoveries,
        report.faulty_observations,
        report.checkpoint_retries,
        report.backoff_ms,
        report.checkpoint_fallbacks
    );
    assert!(
        report.quarantine_events >= 2,
        "storm + flat-line quarantine"
    );
    assert_eq!(
        report.streams_healthy, STREAMS as u64,
        "every stream must end healthy"
    );

    let _ = std::fs::remove_file(&primary);
    let _ = std::fs::remove_file(&last_good);
    println!("fleet survived the storm; all {STREAMS} streams healthy");
}
