//! Unsupervised hyperparameter selection in isolation: reproduces the
//! Section 3.3 workflow and prints the full trial log — the random-search
//! phase and the three one-dimensional median sweeps.
//!
//! ```text
//! cargo run --release --example hyperparameter_tuning
//! ```

use cae_ensemble_repro::core::hyper::{select_hyperparameters, HyperRanges};
use cae_ensemble_repro::prelude::*;

/// Fixed RNG seed for the dataset, the search RNG, and every trial's
/// training run: the printed trial log is fully reproducible.
const SEED: u64 = 21;

fn main() {
    let ds = DatasetKind::Ecg.generate(Scale::Quick, SEED);
    println!(
        "dataset: {} ({} train observations, no labels used)",
        ds.name,
        ds.train.len()
    );

    let model = CaeConfig::new(ds.train.dim()).embed_dim(16).layers(1);
    let ens = EnsembleConfig::new()
        .num_models(2)
        .epochs_per_model(2)
        .train_stride(8)
        .seed(SEED);
    let ranges = HyperRanges {
        windows: vec![8, 16, 32],
        betas: vec![0.2, 0.5, 0.8],
        lambdas: vec![1.0, 4.0, 16.0],
        random_trials: 4,
    };

    let sel = select_hyperparameters(&ds.train, &model, &ens, &ranges, SEED);

    println!("\nrandom-search phase (defaults = median recon error):");
    for t in &sel.random_trials {
        println!(
            "  w={:<3} beta={:.1} lambda={:<4} -> recon {:.5}",
            t.window, t.beta, t.lambda, t.recon_error
        );
    }
    println!("\nwindow sweep:");
    for t in &sel.window_sweep {
        println!("  w={:<3} -> recon {:.5}", t.window, t.recon_error);
    }
    println!("beta sweep:");
    for t in &sel.beta_sweep {
        println!("  beta={:.1} -> recon {:.5}", t.beta, t.recon_error);
    }
    println!("lambda sweep:");
    for t in &sel.lambda_sweep {
        println!("  lambda={:<4} -> recon {:.5}", t.lambda, t.recon_error);
    }
    println!(
        "\nselected: w = {}, beta = {:.1}, lambda = {}",
        sel.window, sel.beta, sel.lambda
    );
    println!(
        "note: the median strategy deliberately avoids the minimum-error\n\
         configuration — the paper shows it overfits (Section 3.3, Figure 14)."
    );
}
