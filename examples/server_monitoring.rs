//! Server-metrics monitoring: the SMD-like scenario of the paper's
//! evaluation. Trains CAE-Ensemble on 38-dimensional machine metrics,
//! compares it against two classic baselines, and reports incident-level
//! detection.
//!
//! ```text
//! cargo run --release --example server_monitoring
//! ```

use cae_ensemble_repro::baselines::{IsolationForest, IsolationForestConfig, MovingAverage};
use cae_ensemble_repro::prelude::*;

/// One fixed RNG seed pins every stochastic component — dataset
/// generation, ensemble training, and the isolation-forest baseline — so
/// repeated runs print identical numbers.
const SEED: u64 = 99;

fn main() {
    cae_ensemble_repro::tensor::par::use_all_cores();

    // The SMD-like benchmark dataset: correlated server metrics with
    // injected incidents (level shifts / spike storms on channel subsets).
    let ds = DatasetKind::Smd.generate(Scale::Quick, SEED);
    println!(
        "dataset: {} — train {}×{}D, test {}×{}D, {:.2}% outliers",
        ds.name,
        ds.train.len(),
        ds.train.dim(),
        ds.test.len(),
        ds.test.dim(),
        100.0 * ds.outlier_ratio()
    );

    let mut detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(MovingAverage::with_defaults()), // deterministic: no RNG
        Box::new(IsolationForest::new(IsolationForestConfig {
            seed: SEED,
            ..IsolationForestConfig::default()
        })),
        Box::new(CaeEnsemble::new(
            CaeConfig::new(ds.train.dim())
                .embed_dim(24)
                .window(16)
                .layers(2),
            EnsembleConfig::new()
                .num_models(4)
                .epochs_per_model(4)
                .train_stride(6)
                .seed(SEED),
        )),
    ];

    for detector in detectors.iter_mut() {
        let t0 = std::time::Instant::now();
        detector.fit(&ds.train);
        let scores = detector.score(&ds.test);
        let report = EvalReport::compute(&scores, &ds.test_labels);
        println!(
            "{:<14} {report}   ({:.1}s)",
            detector.name(),
            t0.elapsed().as_secs_f64()
        );
    }

    println!(
        "\nShape to check (paper Tables 3–4): the convolutional ensemble wins on\n\
         F1/PR; ISF trades precision for recall on interval-labelled incidents."
    );
}
