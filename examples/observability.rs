//! Observability: wire the zero-dependency telemetry registry through the
//! serving, adaptation and durability tiers, survive a NaN storm, and
//! export the whole catalog as JSON and Prometheus text.
//!
//! ```text
//! cargo run --release --example observability
//! ```
//!
//! Writes `target/obs/metrics.json` and `target/obs/metrics.prom` (the
//! CI `observability` job uploads both as artifacts), and finishes with
//! an interleaved A/B measurement of the enabled-telemetry overhead on
//! the fleet tick path.

use cae_ensemble_repro::data::{JournalConfig, JournalRecord, ObservationJournal};
use cae_ensemble_repro::prelude::*;
use cae_ensemble_repro::tensor;
use std::sync::Arc;
use std::time::{Duration, Instant};

const STREAMS: usize = 32;

fn wave(t: usize, k: usize) -> f32 {
    (t as f32 * 0.23 + k as f32 * 0.7).sin() + 0.3 * (t as f32 * 0.05).cos()
}

fn main() {
    // 1. Train a small ensemble to serve.
    let train = TimeSeries::univariate((0..400).map(|t| wave(t, 0)).collect());
    let mut detector = CaeEnsemble::new(
        CaeConfig::new(1).embed_dim(8).window(8).layers(1),
        EnsembleConfig::new()
            .num_models(2)
            .epochs_per_model(2)
            .batch_size(16)
            .train_stride(2)
            .seed(11),
    );
    println!("training CAE-Ensemble (2 basic models)…");
    detector.fit(&train);
    let ensemble = Arc::new(detector);
    let window = ensemble.model_config().window;

    // 2. One registry for every tier. All metric handles share it; the
    //    exporters see one merged, name-sorted catalog.
    let registry = MetricsRegistry::new();
    tensor::obs::install(&registry); // tensor_* dispatch counters

    let mut fleet =
        FleetDetector::with_observability(ensemble.clone(), HealthConfig::default(), &registry);
    let ids: Vec<StreamId> = (0..STREAMS).map(|_| fleet.add_stream()).collect();

    let journal_dir = std::env::temp_dir().join(format!("cae_obs_example_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_dir);
    let mut journal = ObservationJournal::open(&journal_dir, JournalConfig::new().fsync_every(16))
        .expect("journal open");
    journal.attach_observability(&registry); // journal_* latency + counters

    let mut adapt = AdaptationController::with_observability(
        &ensemble,
        &[0.01; 32], // tiny drift band: the probe below trips it
        AdaptationConfig::new()
            .reservoir_capacity(32)
            .min_observations(16)
            .refit(RefitOptions::warm(1, 5)),
        &registry, // adapt_* refit/drift/checkpoint metrics
    );

    // 3. The span-trace ring rides alongside the metrics: enter/exit
    //    events around each tick, merged and sequence-ordered on dump.
    let ring = TraceRing::new(64);
    let tick_span = ring.span("fleet_tick");
    let lane = ring.lane();

    // 4. Serve 60 rounds; stream 0 is hit by a six-tick NaN burst.
    let mut out = Vec::new();
    let mut injected = 0u64;
    for t in 0..60 {
        lane.enter(tick_span, t as u32);
        for (k, &id) in ids.iter().enumerate() {
            let burst = k == 0 && (20..26).contains(&t);
            let obs = if burst { [f32::NAN] } else { [wave(t, k)] };
            injected += u64::from(burst);
            let (slot, generation) = id.raw_parts();
            journal
                .append(&JournalRecord::Observation {
                    slot,
                    generation,
                    values: obs.to_vec(),
                })
                .expect("journal append");
            fleet.push(id, &obs).expect("live stream");
        }
        fleet.tick(&mut out);
        for &(_, score) in &out {
            adapt.observe(fleet.ensemble(), &[score], score);
        }
        lane.exit(tick_span, t as u32);
    }
    // Trip one background re-fit so the adapt_* counters move too.
    for t in 0..20 {
        adapt.observe(fleet.ensemble(), &[wave(t, 0)], 10.0);
    }
    if let Some(adapted) = adapt.wait() {
        fleet.swap_ensemble(adapted);
    }
    journal.sync().expect("journal sync");

    // 5. The registry mirrors the health report exactly — counters are
    //    an exact account of what was injected, not a sample.
    let report = fleet.health_report();
    let snapshot = registry.snapshot();
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    };
    println!("\ninjected NaN observations: {injected}");
    println!(
        "health report faulty_observations: {} — registry serve_faulty_observations_total: {}",
        report.faulty_observations,
        counter("serve_faulty_observations_total")
    );
    assert_eq!(report.faulty_observations, injected);
    assert_eq!(counter("serve_faulty_observations_total"), injected);
    assert_eq!(
        counter("serve_quarantine_events_total"),
        report.quarantine_events
    );

    let dump = ring.dump();
    println!("trace ring: {} events, last four:", dump.len());
    for e in dump.iter().rev().take(4).rev() {
        println!(
            "  seq {:3}  {:?} {} (t={})",
            e.seq, e.kind, e.name, e.payload
        );
    }

    // 6. Export the catalog: deterministic JSON and Prometheus text.
    let out_dir = std::path::Path::new("target/obs");
    std::fs::create_dir_all(out_dir).expect("create target/obs");
    std::fs::write(out_dir.join("metrics.json"), snapshot.to_json()).expect("write json");
    std::fs::write(out_dir.join("metrics.prom"), snapshot.to_prometheus()).expect("write prom");
    println!("\nwrote target/obs/metrics.json and target/obs/metrics.prom");
    let prom = snapshot.to_prometheus();
    println!("Prometheus exposition (counters only):");
    for line in prom.lines().filter(|l| l.ends_with("counter")) {
        println!("  {line}");
    }

    // 7. Enabled-telemetry overhead, measured honestly: the same tick
    //    workload on an instrumented and an uninstrumented fleet,
    //    interleaved round by round so clock drift and frequency scaling
    //    hit both sides equally.
    let ab_registry = MetricsRegistry::new();
    let mut plain = FleetDetector::new(ensemble.clone());
    let mut inst =
        FleetDetector::with_observability(ensemble.clone(), HealthConfig::default(), &ab_registry);
    let p_ids: Vec<StreamId> = (0..STREAMS).map(|_| plain.add_stream()).collect();
    let i_ids: Vec<StreamId> = (0..STREAMS).map(|_| inst.add_stream()).collect();
    let round = |fleet: &mut FleetDetector, ids: &[StreamId], t: usize| {
        let mut out = Vec::new();
        for (k, &id) in ids.iter().enumerate() {
            fleet.push(id, &[wave(t, k)]).expect("live stream");
        }
        fleet.tick(&mut out);
        std::hint::black_box(out.len())
    };
    for t in 0..window + 8 {
        round(&mut plain, &p_ids, t);
        round(&mut inst, &i_ids, t);
    }
    // Ticks alternate sides so interference lands on both fleets
    // equally, and the per-side minimum over 8 blocks discards inflated
    // blocks entirely (same discipline as `perf_report`).
    const BLOCKS: usize = 8;
    const TICKS_PER_BLOCK: usize = 100;
    let (mut plain_best, mut inst_best) = (Duration::MAX, Duration::MAX);
    for b in 0..BLOCKS {
        let (mut plain_block, mut inst_block) = (Duration::ZERO, Duration::ZERO);
        for t in 0..TICKS_PER_BLOCK {
            let t0 = Instant::now();
            round(&mut plain, &p_ids, b * TICKS_PER_BLOCK + t);
            plain_block += t0.elapsed();
            let t1 = Instant::now();
            round(&mut inst, &i_ids, b * TICKS_PER_BLOCK + t);
            inst_block += t1.elapsed();
        }
        plain_best = plain_best.min(plain_block);
        inst_best = inst_best.min(inst_block);
    }
    let overhead = inst_best.as_secs_f64() / plain_best.as_secs_f64() - 1.0;
    println!(
        "\ntelemetry overhead, best of {BLOCKS} interleaved {TICKS_PER_BLOCK}-tick blocks \
         ({STREAMS} streams): plain {:?}/tick, instrumented {:?}/tick — {:+.2}%",
        plain_best / TICKS_PER_BLOCK as u32,
        inst_best / TICKS_PER_BLOCK as u32,
        overhead * 100.0
    );
    assert!(
        overhead < 0.05,
        "enabled telemetry must cost under 5% of a fleet tick"
    );

    let _ = std::fs::remove_dir_all(&journal_dir);
    println!("done");
}
