//! Online adaptation: a served fleet survives a regime drift.
//!
//! ```text
//! cargo run --release --example online_adaptation
//! ```
//!
//! The paper trains offline and scores online, so a deployed ensemble
//! decays silently once the stream drifts. This example closes the loop:
//!
//! 1. **Train & serve** — fit on a two-frequency signal, calibrate a
//!    drift band from the model's own training scores, and serve a fleet
//!    of phase-shifted streams.
//! 2. **Drift** — the signal's primary frequency, amplitude and level
//!    shift. Per-observation outlier scores jump; the score EWMA of a
//!    designated *canary* stream climbs out of the calibrated band.
//! 3. **Re-fit** — the [`AdaptationController`] snapshots the live
//!    ensemble and warm-starts a re-fit on its reservoir of recent raw
//!    observations, on a background thread. Serving never misses a tick.
//! 4. **Swap** — the adapted ensemble is checkpointed atomically,
//!    published, and hot-swapped into the fleet between two ticks.
//!    Post-swap scores drop back to normal.
//!
//! Every random choice is pinned to [`SEED`], so the run is
//! deterministic.

use cae_ensemble_repro::prelude::*;

/// Fixed RNG seed for every seeded component of this example.
const SEED: u64 = 17;

/// Streams served by the fleet (all share the drifting regime; their
/// phases differ). Stream 0 is the canary that feeds the drift monitor
/// and the re-fit reservoir.
const STREAMS: usize = 16;

/// The signal family: two superimposed sinusoids.
fn wave(t: usize, phase: f32, drifted: bool) -> f32 {
    let (f1, scale, level) = if drifted {
        (0.34, 1.5, 0.6) // drift: faster, larger, shifted
    } else {
        (0.25, 1.0, 0.0)
    };
    scale * ((t as f32 * f1 + phase).sin() + 0.5 * (t as f32 * 0.07 + phase).sin() + level)
}

fn main() {
    cae_ensemble_repro::tensor::par::use_all_cores();

    // --- 1. Offline: train on the healthy regime ----------------------
    let train = TimeSeries::univariate((0..600).map(|t| wave(t, 0.0, false)).collect());
    let mut detector = CaeEnsemble::new(
        CaeConfig::new(1).embed_dim(16).window(16).layers(2),
        EnsembleConfig::new()
            .num_models(3)
            .epochs_per_model(4)
            .train_stride(2)
            .seed(SEED),
    );
    println!("offline training on the healthy regime…");
    detector.fit(&train);

    // The drift band is calibrated on the model's own healthy scores —
    // the tail of the series, past the first window's interior whose
    // protocol scores (Figure 10) run hotter than steady state.
    let baseline = &detector.score(&train)[16..];

    // --- Serve a fleet, watched by an adaptation controller -----------
    let checkpoint = std::env::temp_dir().join("cae_online_adaptation_demo.caee");
    let mut fleet = FleetDetector::new(detector);
    let ids: Vec<StreamId> = (0..STREAMS).map(|_| fleet.add_stream()).collect();
    let canary = ids[0];
    let mut adapt = AdaptationController::new(
        fleet.ensemble(),
        baseline,
        AdaptationConfig::new()
            .reservoir_capacity(320)
            .min_observations(240)
            .ewma_alpha(0.05)
            .band_sigma(1.5)
            .cooldown(2000)
            .refit(RefitOptions::warm(4, SEED))
            .checkpoint_path(&checkpoint),
    );
    let (_, band_std) = adapt.monitor().baseline();
    println!(
        "serving {STREAMS} streams; drift band: EWMA ≤ {:.4} (1.5σ, σ = {band_std:.4})",
        adapt.monitor().threshold()
    );

    let phase_of = |k: usize| k as f32 * 0.37;
    let mut out = Vec::new();
    let mut canary_scores: Vec<(usize, f32)> = Vec::new();
    let mut tripped_at = None;
    let mut swapped_at = None;
    let mut refit_ticks = 0usize;
    let drift_start = 400usize;
    let total_ticks = 1400usize;

    for t in 0..total_ticks {
        let drifted = t >= drift_start;
        let mut canary_obs = [0.0f32];
        for (k, &id) in ids.iter().enumerate() {
            let obs = [wave(t, phase_of(k), drifted)];
            if id == canary {
                canary_obs = obs;
            }
            fleet.push(id, &obs).expect("live stream");
        }
        fleet.tick(&mut out);

        // Feed the canary's scored observation to the controller. (The
        // reservoir needs contiguous single-stream history — see the
        // `ObservationReservoir` docs — so one representative stream
        // watches for the whole fleet.)
        if let Some(&(_, score)) = out.iter().find(|(id, _)| *id == canary) {
            canary_scores.push((t, score));
            let was_drifted = adapt.monitor().is_drifted();
            let started = adapt.observe(fleet.ensemble(), &canary_obs, score);
            if !was_drifted && adapt.monitor().is_drifted() && tripped_at.is_none() {
                tripped_at = Some(t);
                println!(
                    "t = {t:4}: drift statistic tripped (EWMA {:.4} > {:.4})",
                    adapt.monitor().ewma().expect("observed"),
                    adapt.monitor().threshold()
                );
            }
            if started {
                println!("t = {t:4}: background warm re-fit started");
            }
        }
        if adapt.refit_in_progress() {
            refit_ticks += 1;
        }

        // Publish check: O(1) when nothing is ready; the swap itself is
        // an O(1) pointer exchange between two ticks.
        if let Some(adapted) = adapt.poll() {
            let generation = fleet.swap_ensemble(adapted);
            swapped_at.get_or_insert(t);
            println!(
                "t = {t:4}: hot swap to model generation {generation} \
                 (served {refit_ticks} ticks while re-fitting)"
            );
        }
    }

    // --- Report & verify ----------------------------------------------
    let mean_over = |lo: usize, hi: usize| {
        let s: Vec<f32> = canary_scores
            .iter()
            .filter(|&&(t, _)| t >= lo && t < hi)
            .map(|&(_, s)| s)
            .collect();
        s.iter().sum::<f32>() / s.len() as f32
    };
    let tripped_at = tripped_at.expect("drift must trip the monitor");
    let swapped_at = swapped_at.expect("the re-fit must publish a swap");
    let healthy = mean_over(16, drift_start);
    let during = mean_over(drift_start + 50, swapped_at);
    let recovered = mean_over(swapped_at + 50, total_ticks);
    println!("\ncanary mean outlier score:");
    println!("  healthy regime            {healthy:9.4}");
    println!("  drifted, stale model      {during:9.4}");
    println!("  drifted, adapted model    {recovered:9.4}");
    println!(
        "timeline: drift at t = {drift_start}, tripped at t = {tripped_at}, \
         swapped at t = {swapped_at}"
    );
    println!(
        "counters: drift trips {}, re-fits {}, swaps {}, checkpoints {}",
        adapt.stats().drift_trips,
        adapt.stats().refits_completed,
        fleet.swap_count(),
        adapt.stats().checkpoints_written
    );

    assert!(tripped_at >= drift_start, "band must hold pre-drift");
    assert!(
        recovered < during * 0.5,
        "adapted model must at least halve the drifted score level"
    );

    // The published checkpoint is the serving model, bit for bit.
    let reloaded = CaeEnsemble::load(&checkpoint).expect("published checkpoint loads");
    let probe = TimeSeries::univariate((0..160).map(|t| wave(t, 0.5, true)).collect());
    assert_eq!(
        reloaded.score(&probe),
        fleet.ensemble().score(&probe),
        "checkpoint and serving model must score identically"
    );
    let _ = std::fs::remove_file(&checkpoint);
    println!("checkpoint verified: reload scores bit-identical to the serving model ✓");
}
