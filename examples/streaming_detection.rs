//! Online detection: train offline, then score a live stream one
//! observation at a time (the Table 8 setting), raising alerts when the
//! score crosses a threshold calibrated on the training data.
//!
//! ```text
//! cargo run --release --example streaming_detection
//! ```

use cae_ensemble_repro::prelude::*;

/// Fixed RNG seed: training is deterministic, so repeated runs raise the
/// same alerts.
const SEED: u64 = 11;

fn main() {
    // Offline phase: train on a clean periodic signal.
    let train = TimeSeries::univariate((0..1500).map(|t| (t as f32 * 0.25).sin()).collect());
    let mut detector = CaeEnsemble::new(
        CaeConfig::new(1).embed_dim(16).window(16).layers(2),
        EnsembleConfig::new()
            .num_models(3)
            .epochs_per_model(5)
            .seed(SEED),
    );
    println!("offline training…");
    detector.fit(&train);

    // Calibrate an alert threshold without labels: a high quantile of the
    // training scores (the domain-knowledge threshold ε of Section 2).
    let train_scores = detector.score(&train);
    let mut sorted = train_scores.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    let threshold = sorted[(sorted.len() as f64 * 0.999) as usize];
    println!("alert threshold (99.9th percentile of training scores): {threshold:.4}");

    // Online phase: stream arrives one observation at a time.
    let mut stream = StreamingDetector::new(&detector);
    let mut alerts = Vec::new();
    let t0 = std::time::Instant::now();
    let mut n_scored = 0usize;
    for t in 0..600usize {
        let mut value = (t as f32 * 0.25).sin();
        if t == 300 {
            value += 6.0; // fault injection
        }
        if (450..460).contains(&t) {
            value = 0.0; // sensor dropout
        }
        if let Some(score) = stream.push(&[value]) {
            n_scored += 1;
            if score > threshold {
                alerts.push((t, score));
            }
        }
    }
    let elapsed = t0.elapsed();
    println!(
        "scored {n_scored} observations in {:.1} ms ({:.4} ms/window)",
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e3 / n_scored as f64
    );
    println!("alerts:");
    for (t, score) in &alerts {
        println!("  t = {t:4}  score = {score:8.3}");
    }
    assert!(
        alerts.iter().any(|&(t, _)| t == 300),
        "the injected fault at t = 300 was not flagged"
    );
    println!("fault at t = 300 flagged ✓");
}
