//! Quickstart: train a CAE-Ensemble on a synthetic periodic signal and
//! flag injected anomalies.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cae_ensemble_repro::prelude::*;

/// Fixed RNG seed: training is deterministic, so repeated runs print
/// identical scores.
const SEED: u64 = 7;

fn main() {
    // 1. A clean training series: two superimposed sinusoids.
    let train = TimeSeries::univariate(
        (0..2000)
            .map(|t| (t as f32 * 0.2).sin() + 0.4 * (t as f32 * 0.05).sin())
            .collect(),
    );

    // 2. A test series with three kinds of injected outliers.
    let mut values: Vec<f32> = (0..800)
        .map(|t| (t as f32 * 0.2).sin() + 0.4 * (t as f32 * 0.05).sin())
        .collect();
    values[200] += 5.0; // point spike
    for v in values.iter_mut().take(420).skip(400) {
        *v += 2.0; // level shift interval
    }
    for (i, v) in values.iter_mut().take(620).skip(600).enumerate() {
        *v = if i % 2 == 0 { 3.0 } else { -3.0 }; // oscillation fault
    }
    let test = TimeSeries::univariate(values);
    let mut labels = vec![false; 800];
    labels[200] = true;
    labels[400..420].fill(true);
    labels[600..620].fill(true);

    // 3. Configure and train the detector (Section 3 of the paper).
    let model_cfg = CaeConfig::new(1).embed_dim(16).window(16).layers(2);
    let ens_cfg = EnsembleConfig::new()
        .num_models(4)
        .epochs_per_model(5)
        .lambda(2.0) // diversity weight λ (Eq. 13)
        .beta(0.5) // parameter-transfer fraction β (Fig. 9)
        .seed(SEED);
    let mut detector = CaeEnsemble::new(model_cfg, ens_cfg);

    println!("training CAE-Ensemble (4 basic models)…");
    detector.fit(&train);

    // 4. Score and evaluate.
    let scores = detector.score(&test);
    let report = EvalReport::compute(&scores, &labels);
    println!("evaluation: {report}");

    // 5. Show the top-scoring timestamps.
    let mut ranked: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("scores are finite"));
    println!("top-10 flagged timestamps (truth in brackets):");
    for &(t, s) in ranked.iter().take(10) {
        println!(
            "  t = {t:4}  score = {s:8.3}  [{}]",
            if labels[t] { "outlier" } else { "normal" }
        );
    }
    assert!(
        report.roc_auc > 0.8,
        "detector failed to separate the anomalies"
    );
    println!("done — ROC AUC {:.3}", report.roc_auc);
}
