//! # CAE-Ensemble reproduction
//!
//! Umbrella crate for the from-scratch Rust reproduction of
//! *"Unsupervised Time Series Outlier Detection with Diversity-Driven
//! Convolutional Ensembles"* (Campos et al., PVLDB 2022).
//!
//! This crate re-exports the public API of the workspace so downstream
//! users can depend on a single crate:
//!
//! * [`core`] — the CAE-Ensemble detector (the paper's contribution);
//! * [`serve`] — checkpoint-backed serving: many concurrent streams
//!   batched against one trained ensemble, with hot ensemble swap;
//! * [`adapt`] — online adaptation: drift detection, background
//!   warm-start re-fit, atomic checkpointing and swap publishing;
//! * [`chaos`] — deterministic fault injection: seeded failpoints and
//!   input-fault generators for chaos-testing the serving stack;
//! * [`baselines`] — the eleven comparison methods of the evaluation;
//! * [`data`] — time series containers, pre-processing, synthetic datasets;
//! * [`metrics`] — PR/ROC AUC and F1 evaluation suites;
//! * [`obs`] — runtime telemetry: the lock-free metrics registry,
//!   latency histograms, span-trace ring and exporters every serving
//!   tier publishes into;
//! * [`nn`] / [`autograd`] / [`tensor`] — the neural substrate.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the
//! paper-to-code map.

pub use cae_adapt as adapt;
pub use cae_autograd as autograd;
pub use cae_baselines as baselines;
pub use cae_chaos as chaos;
pub use cae_core as core;
pub use cae_data as data;
pub use cae_metrics as metrics;
pub use cae_nn as nn;
pub use cae_obs as obs;
pub use cae_serve as serve;
pub use cae_tensor as tensor;

/// Convenience prelude importing the types most programs need.
pub mod prelude {
    pub use cae_adapt::{AdaptationConfig, AdaptationController, CheckpointFailure};
    pub use cae_chaos::HealthReport;
    pub use cae_core::{
        CaeConfig, CaeEnsemble, EnsembleConfig, PersistError, RefitOptions, StreamingDetector,
    };
    pub use cae_data::{
        Dataset, DatasetKind, Detector, DriftMonitor, ObservationReservoir, Scale, Scaler,
        TimeSeries,
    };
    pub use cae_metrics::EvalReport;
    pub use cae_obs::{MetricsRegistry, ObsClock, TraceRing};
    pub use cae_serve::{
        FleetDetector, HealthConfig, PushError, PushOutcome, StreamHealth, StreamId,
    };
}

#[cfg(test)]
mod tests {
    //! Audit that every name the umbrella re-exports actually resolves —
    //! both the crate aliases above and each item in [`crate::prelude`].

    #[test]
    fn prelude_names_resolve_and_construct() {
        use crate::prelude::{
            AdaptationConfig, AdaptationController, CaeConfig, CaeEnsemble, CheckpointFailure,
            Dataset, DatasetKind, Detector, DriftMonitor, EnsembleConfig, EvalReport,
            FleetDetector, HealthConfig, HealthReport, MetricsRegistry, ObsClock,
            ObservationReservoir, PushError, PushOutcome, RefitOptions, Scale, Scaler,
            StreamHealth, StreamingDetector, TimeSeries, TraceRing,
        };

        let series = TimeSeries::univariate((0..64).map(|t| (t as f32 * 0.3).sin()).collect());
        let scaler = Scaler::fit(&series);
        let _scaled = scaler.transform(&series);

        let ds: Dataset = DatasetKind::Ecg.generate(Scale::Quick, 1);
        assert!(!ds.train.is_empty() && !ds.test.is_empty());

        let mut ens = CaeEnsemble::new(
            CaeConfig::new(1).embed_dim(4).window(8).layers(1),
            EnsembleConfig::new()
                .num_models(1)
                .epochs_per_model(1)
                .seed(3),
        );
        ens.fit(&series);
        let scores = ens.score(&series);
        assert_eq!(scores.len(), series.len());

        let labels: Vec<bool> = (0..series.len()).map(|t| t == 40).collect();
        let report = EvalReport::compute(&scores, &labels);
        assert!(report.roc_auc.is_finite());

        let mut streaming = StreamingDetector::new(&ens);
        let s = streaming.push(&[0.5]);
        assert!(s.is_none_or(f32::is_finite));

        let mut fleet = FleetDetector::with_health(ens, HealthConfig::default());
        let id = fleet.add_stream();
        assert_eq!(fleet.push(id, &[0.5]), Ok(PushOutcome::Stored));
        assert_eq!(fleet.stream_health(id), StreamHealth::Healthy);
        assert_eq!(
            fleet.push(id, &[0.5, 0.5]),
            Err(PushError::DimMismatch {
                got: 2,
                expected: 1
            })
        );
        let mut ticked = Vec::new();
        fleet.tick(&mut ticked);
        assert!(ticked.iter().all(|(_, v)| v.is_finite()));
        let mut report: HealthReport = fleet.health_report();
        assert!(report.degraded());

        let mut reservoir = ObservationReservoir::new(1, 8);
        reservoir.push(&[0.5]);
        let mut monitor = DriftMonitor::from_baseline_scores(&scores, 0.1, 4.0);
        let _ = monitor.observe(0.1);
        let _ = RefitOptions::warm(1, 0);
        let mut adapt = AdaptationController::new(
            fleet.ensemble(),
            &scores,
            AdaptationConfig::new()
                .min_observations(16)
                .reservoir_capacity(32),
        );
        let _ = adapt.observe(fleet.ensemble(), &[0.5], 0.1);
        assert!(adapt.poll().is_none());
        report.merge(&adapt.health_report());
        let _: Option<&CheckpointFailure> = adapt.last_checkpoint_error();

        let registry = MetricsRegistry::new();
        registry.counter("prelude_checks_total").inc();
        let _clock = ObsClock::monotonic();
        let ring = TraceRing::new(8);
        let lane = ring.lane();
        lane.enter(ring.span("prelude"), 0);
        assert_eq!(ring.dump().len(), 1);
        assert!(registry
            .snapshot()
            .to_json()
            .contains("prelude_checks_total"));
    }

    #[test]
    fn crate_aliases_resolve() {
        let t = crate::tensor::Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let _ = crate::autograd::Tape::new();
        let _ = crate::nn::Activation::Relu;
        let _ = crate::metrics::roc_auc(&[0.1, 0.9], &[false, true]);
        let _ = crate::data::num_windows(16, 8);
        let _ = crate::baselines::MovingAverage::with_defaults();
        let _ = crate::core::ReconstructionTarget::Raw;
        let _ = crate::obs::MetricsRegistry::disabled();
        let _ = crate::serve::FLEET_BATCH;
        let _ = crate::adapt::AdaptationStats::default();
        let _ = crate::chaos::SplitMix64::new(7);
        let _ = crate::chaos::InputFault::ALL;
        assert_eq!(t.dims(), &[2, 2]);
    }
}
