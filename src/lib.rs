//! # CAE-Ensemble reproduction
//!
//! Umbrella crate for the from-scratch Rust reproduction of
//! *"Unsupervised Time Series Outlier Detection with Diversity-Driven
//! Convolutional Ensembles"* (Campos et al., PVLDB 2022).
//!
//! This crate re-exports the public API of the workspace so downstream
//! users can depend on a single crate:
//!
//! * [`core`] — the CAE-Ensemble detector (the paper's contribution);
//! * [`baselines`] — the eleven comparison methods of the evaluation;
//! * [`data`] — time series containers, pre-processing, synthetic datasets;
//! * [`metrics`] — PR/ROC AUC and F1 evaluation suites;
//! * [`nn`] / [`autograd`] / [`tensor`] — the neural substrate.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the
//! paper-to-code map.

pub use cae_autograd as autograd;
pub use cae_baselines as baselines;
pub use cae_core as core;
pub use cae_data as data;
pub use cae_metrics as metrics;
pub use cae_nn as nn;
pub use cae_tensor as tensor;

/// Convenience prelude importing the types most programs need.
pub mod prelude {
    pub use cae_core::{CaeConfig, CaeEnsemble, EnsembleConfig, StreamingDetector};
    pub use cae_data::{Dataset, DatasetKind, Detector, Scale, Scaler, TimeSeries};
    pub use cae_metrics::EvalReport;
}
